//! Protocol configuration: the (n, k) code bound to a trapezoid.

use core::fmt;

use tq_erasure::{CodeParams, GeneratorKind, ParamError, ReedSolomon};
use tq_quorum::trapezoid::{ShapeError, TrapErcSystem, TrapezoidShape, WriteThresholds};

use crate::errors::ProtocolError;

/// Everything static about one TRAP-ERC deployment: code parameters,
/// trapezoid shape and write thresholds. Constructing it validates the
/// paper's structural constraints once, so protocol code never re-checks:
///
/// * `shape.node_count() == n − k + 1` (eq. 5);
/// * `w_0 = ⌊b/2⌋ + 1 ≤ w_0 ≤ s_0`, `1 ≤ w_l ≤ s_l` (§III-B.3);
/// * node universe: cluster node `i` holds stripe block `i`
///   (data `0..k`, parity `k..n`).
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    params: CodeParams,
    shape: TrapezoidShape,
    thresholds: WriteThresholds,
    generator: GeneratorKind,
}

impl ProtocolConfig {
    /// Builds and validates a configuration.
    ///
    /// # Errors
    /// Propagates parameter and shape validation failures.
    pub fn new(
        params: CodeParams,
        shape: TrapezoidShape,
        thresholds: WriteThresholds,
    ) -> Result<Self, ProtocolError> {
        // TrapErcSystem::new enforces node_count == n - k + 1; probe with
        // block 0 (membership for other blocks only permutes N_i).
        TrapErcSystem::new(shape, thresholds.clone(), params.n(), params.k(), 0)
            .map_err(ProtocolError::Shape)?;
        Ok(ProtocolConfig {
            params,
            shape,
            thresholds,
            generator: GeneratorKind::default(),
        })
    }

    /// Convenience constructor from raw numbers: an `(n, k)` code on an
    /// `(a, b, h)` trapezoid with explicit per-level thresholds.
    ///
    /// # Errors
    /// Any parameter/shape/threshold validation failure.
    pub fn build(
        n: usize,
        k: usize,
        a: usize,
        b: usize,
        h: usize,
        w: &[usize],
    ) -> Result<Self, ProtocolError> {
        let params = CodeParams::new(n, k).map_err(ProtocolError::Params)?;
        let shape = TrapezoidShape::new(a, b, h).map_err(ProtocolError::Shape)?;
        let mut thresholds = Vec::with_capacity(w.len() + 1);
        thresholds.push(b / 2 + 1);
        thresholds.extend_from_slice(w);
        let thresholds = WriteThresholds::new(&shape, thresholds).map_err(ProtocolError::Shape)?;
        ProtocolConfig::new(params, shape, thresholds)
    }

    /// The eq. 16 parameterisation: single `w` for all levels `≥ 1`.
    ///
    /// # Errors
    /// Any parameter/shape/threshold validation failure.
    pub fn with_uniform_w(
        n: usize,
        k: usize,
        a: usize,
        b: usize,
        h: usize,
        w: usize,
    ) -> Result<Self, ProtocolError> {
        let params = CodeParams::new(n, k).map_err(ProtocolError::Params)?;
        let shape = TrapezoidShape::new(a, b, h).map_err(ProtocolError::Shape)?;
        let thresholds = WriteThresholds::paper_default(&shape, w).map_err(ProtocolError::Shape)?;
        ProtocolConfig::new(params, shape, thresholds)
    }

    /// Selects the generator construction (default Vandermonde).
    pub fn with_generator(mut self, kind: GeneratorKind) -> Self {
        self.generator = kind;
        self
    }

    /// The (n, k) code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The trapezoid shape.
    pub fn shape(&self) -> &TrapezoidShape {
        &self.shape
    }

    /// The write thresholds.
    pub fn thresholds(&self) -> &WriteThresholds {
        &self.thresholds
    }

    /// Instantiates the codec for this configuration.
    pub fn codec(&self) -> ReedSolomon {
        ReedSolomon::with_generator(self.params, self.generator)
    }

    /// The per-block trapezoid membership/availability view.
    ///
    /// # Panics
    /// Panics if `block ≥ k` (programmer error; validated shapes cannot
    /// fail the other constructor paths).
    pub fn system_for_block(&self, block: usize) -> TrapErcSystem {
        TrapErcSystem::new(
            self.shape,
            self.thresholds.clone(),
            self.params.n(),
            self.params.k(),
            block,
        )
        .expect("config validated at construction")
    }
}

impl fmt::Display for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} w={:?}",
            self.params,
            self.shape,
            self.thresholds.as_slice()
        )
    }
}

/// Re-exported error types used in config construction signatures.
pub mod error_types {
    pub use tq_erasure::ParamError;
    pub use tq_quorum::trapezoid::ShapeError;
}

// Silence unused-import lint for the doc re-export above while keeping the
// names in the public signature path.
const _: Option<ParamError> = None;
const _: Option<ShapeError> = None;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_validates_eq5() {
        // (9, 6): trapezoid must have 4 nodes.
        assert!(ProtocolConfig::build(9, 6, 2, 1, 1, &[1]).is_ok()); // 1 + 3 = 4
        let err = ProtocolConfig::build(9, 6, 2, 3, 2, &[2, 2]).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Shape(ShapeError::StripeMismatch { .. })
        ));
    }

    #[test]
    fn build_prepends_majority_w0() {
        let c = ProtocolConfig::build(15, 8, 0, 4, 1, &[2]).unwrap();
        assert_eq!(c.thresholds().as_slice(), &[3, 2]); // ⌊4/2⌋+1 = 3
    }

    #[test]
    fn uniform_w_matches_eq16() {
        let c = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        assert_eq!(c.thresholds().as_slice(), &[3, 2]);
        assert_eq!(c.params().n(), 15);
        assert_eq!(c.shape().node_count(), 8);
    }

    #[test]
    fn rejects_bad_code_params() {
        assert!(matches!(
            ProtocolConfig::build(3, 5, 0, 1, 0, &[]),
            Err(ProtocolError::Params(ParamError::KExceedsN { .. }))
        ));
    }

    #[test]
    fn codec_and_system_agree_with_config() {
        let c = ProtocolConfig::with_uniform_w(9, 6, 2, 1, 1, 1).unwrap();
        let rs = c.codec();
        assert_eq!(rs.params(), c.params());
        let sys = c.system_for_block(5);
        assert_eq!(sys.block(), 5);
        assert_eq!(sys.n(), 9);
        // Level 0 holds N_5 (b = 1 ⇒ alone); level 1 the three parity
        // nodes 6, 7, 8.
        assert_eq!(sys.level_members(0), &[5]);
        assert_eq!(sys.level_members(1), &[6, 7, 8]);
    }

    #[test]
    fn display_is_informative() {
        let c = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let s = c.to_string();
        assert!(s.contains("(15, 8)-MDS"));
        assert!(s.contains("a=0"));
    }
}
