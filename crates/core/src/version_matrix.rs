//! The version matrix V of Algorithm 1/2.
//!
//! The paper defines `V` as a `k × (n − k)` matrix where `V(i, j − k)` is
//! the version of the contribution `α_{j,i}·b_i` currently folded into
//! parity node `j`. Each parity node owns one *column*; protocol
//! operations gather columns from live nodes into this client-side
//! structure, find the latest version of the target block, and pick
//! mutually-consistent node sets for decode.

use core::fmt;

/// Client-side assembly of version information gathered during one
/// operation. Columns are `Option` — a down node's column stays `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionMatrix {
    k: usize,
    parity_count: usize,
    /// `columns[j - k]` = version vector of parity node `j`.
    columns: Vec<Option<Vec<u64>>>,
    /// Versions of the data nodes (`data[i]` = version of `N_i`'s block),
    /// where known.
    data: Vec<Option<u64>>,
}

impl VersionMatrix {
    /// An empty matrix for a `(n, k)` stripe.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= n, "invalid (n, k) = ({n}, {k})");
        VersionMatrix {
            k,
            parity_count: n - k,
            columns: vec![None; n - k],
            data: vec![None; k],
        }
    }

    /// Number of data blocks `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records the column of parity node `j` (stripe index `k ≤ j < n`).
    ///
    /// # Panics
    /// Panics if `j` is not a parity index or the column length ≠ k.
    pub fn set_column(&mut self, j: usize, column: Vec<u64>) {
        assert!(
            j >= self.k && j < self.k + self.parity_count,
            "{j} is not a parity index"
        );
        assert_eq!(column.len(), self.k, "column length must be k");
        self.columns[j - self.k] = Some(column);
    }

    /// Records the version of data node `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ k`.
    pub fn set_data_version(&mut self, i: usize, version: u64) {
        self.data[i] = Some(version);
    }

    /// `V(i, j − k)` if node `j`'s column was collected.
    pub fn get(&self, i: usize, j: usize) -> Option<u64> {
        self.columns[j - self.k].as_ref().map(|c| c[i])
    }

    /// Version of data node `i`, if collected.
    pub fn data_version(&self, i: usize) -> Option<u64> {
        self.data[i]
    }

    /// The largest version observed for block `i` across the data node
    /// and every collected parity column — Algorithm 2's "latest version"
    /// after a completed check.
    pub fn latest_version(&self, i: usize) -> Option<u64> {
        let from_parity = self.columns.iter().flatten().map(|c| c[i]).max();
        match (self.data[i], from_parity) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Stripe indices of parity nodes whose collected column holds
    /// `version` for block `i` — the "updated nodes" of Algorithm 2.
    pub fn parity_nodes_at(&self, i: usize, version: u64) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(c, col)| {
                col.as_ref()
                    .filter(|col| col[i] == version)
                    .map(|_| self.k + c)
            })
            .collect()
    }

    /// Groups collected parity columns by exact value, keeping only
    /// groups whose entry for block `i` equals `version`. Decode safety
    /// requires the k chosen blocks to reflect *one* stripe state;
    /// identical columns guarantee that for the parity part. Every group
    /// is a valid basis for decoding block `i` at `version` (the other
    /// components of an older stripe state do not change `b_i`'s bytes),
    /// so callers should pick the group that maximises usable nodes.
    pub fn consistent_parity_groups(&self, i: usize, version: u64) -> Vec<(Vec<usize>, Vec<u64>)> {
        let mut groups: Vec<(Vec<usize>, Vec<u64>)> = Vec::new();
        for (c, col) in self.columns.iter().enumerate() {
            let Some(col) = col else { continue };
            if col[i] != version {
                continue;
            }
            match groups.iter_mut().find(|(_, g)| g == col) {
                Some((members, _)) => members.push(self.k + c),
                None => groups.push((vec![self.k + c], col.clone())),
            }
        }
        groups
    }

    /// The group from [`VersionMatrix::consistent_parity_groups`] with
    /// the most members (ties broken by first appearance).
    pub fn largest_consistent_parity_group(
        &self,
        i: usize,
        version: u64,
    ) -> Option<(Vec<usize>, Vec<u64>)> {
        self.consistent_parity_groups(i, version)
            .into_iter()
            .max_by_key(|(members, _)| members.len())
    }
}

impl fmt::Display for VersionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "V ({} data x {} parity):", self.k, self.parity_count)?;
        for i in 0..self.k {
            write!(f, "  b_{i} [data: ")?;
            match self.data[i] {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "?")?,
            }
            write!(f, "] ")?;
            for col in &self.columns {
                match col {
                    Some(c) => write!(f, "{:>3}", c[i])?,
                    None => write!(f, "  ?")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_and_query() {
        let mut v = VersionMatrix::new(6, 4); // 4 data, 2 parity (j = 4, 5)
        assert_eq!(v.latest_version(0), None);
        v.set_column(4, vec![1, 0, 2, 0]);
        v.set_column(5, vec![1, 0, 3, 0]);
        v.set_data_version(2, 3);
        assert_eq!(v.get(2, 4), Some(2));
        assert_eq!(v.get(2, 5), Some(3));
        assert_eq!(v.data_version(2), Some(3));
        assert_eq!(v.latest_version(2), Some(3));
        assert_eq!(v.latest_version(0), Some(1));
        assert_eq!(v.latest_version(1), Some(0));
    }

    #[test]
    fn parity_nodes_at_version() {
        let mut v = VersionMatrix::new(7, 4); // parity j = 4, 5, 6
        v.set_column(4, vec![5, 0, 0, 0]);
        v.set_column(6, vec![5, 0, 0, 0]);
        // Column 5 never collected (node down).
        assert_eq!(v.parity_nodes_at(0, 5), vec![4, 6]);
        assert_eq!(v.parity_nodes_at(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn consistent_group_selection() {
        let mut v = VersionMatrix::new(8, 4); // parity 4..8
                                              // Two nodes agree on one stripe state, one diverges on another
                                              // block's version, one is stale for block 0.
        v.set_column(4, vec![7, 1, 2, 0]);
        v.set_column(5, vec![7, 1, 2, 0]);
        v.set_column(6, vec![7, 9, 2, 0]); // consistent for block 0 only
        v.set_column(7, vec![6, 1, 2, 0]); // stale for block 0
        let (members, col) = v.largest_consistent_parity_group(0, 7).unwrap();
        assert_eq!(members, vec![4, 5]);
        assert_eq!(col, vec![7, 1, 2, 0]);
        // No group at an unseen version.
        assert!(v.largest_consistent_parity_group(0, 42).is_none());
    }

    #[test]
    fn display_renders() {
        let mut v = VersionMatrix::new(5, 3);
        v.set_column(3, vec![1, 2, 3]);
        v.set_data_version(0, 1);
        let s = v.to_string();
        assert!(s.contains("b_0"));
        assert!(s.contains('?'), "missing column shown as ?");
    }

    #[test]
    #[should_panic(expected = "not a parity index")]
    fn set_column_rejects_data_index() {
        let mut v = VersionMatrix::new(5, 3);
        v.set_column(1, vec![0, 0, 0]);
    }
}
