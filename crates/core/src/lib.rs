//! # tq-trapezoid — the TRAP-ERC protocol (the paper's contribution)
//!
//! This crate composes the substrates into the system of Relaza, Jorda &
//! M'zoughi, *Trapezoid Quorum Protocol Dedicated to Erasure Resilient
//! Coding Based Schemes* (IPDPSW 2015):
//!
//! * `tq-erasure` supplies the systematic (n, k) MDS code and the
//!   `α_{j,i}` delta coefficients (eq. 1);
//! * `tq-quorum` supplies the trapezoid geometry, thresholds and the
//!   per-block [`tq_quorum::TrapErcSystem`] membership mapping (eq. 5:
//!   `Nbnode = n − k + 1`);
//! * `tq-cluster` supplies storage nodes with exactly the primitive
//!   surface the pseudocode calls (`write`, `read`, `version`, `add`).
//!
//! On top sit faithful executable versions of the paper's pseudocode:
//!
//! * [`TrapErcClient::write_block`] — **Algorithm 1**: read the old
//!   chunk, then walk levels 0..=h writing `x` to `N_i` and folding
//!   `α_{j,i}·(x − chunk)` into each parity node under a version guard;
//!   a level that validates fewer than `w_l` nodes fails the write.
//! * [`TrapErcClient::read_block`] — **Algorithm 2**: per level, poll
//!   versions from `r_l = s_l − w_l + 1` members; once a level completes,
//!   serve from `N_i` if it holds the latest version, otherwise decode
//!   from `k` mutually-consistent stripe nodes.
//! * [`TrapFrClient`] — the same trapezoid over full replication
//!   (TRAP-FR), the paper's §IV comparison baseline.
//! * [`baselines`] — ROWA and Majority replication clients (§II).
//!
//! Every level loop dispatches through the scatter-gather round engine
//! ([`tq_cluster::QuorumRound`]): a level's requests go out in one
//! [`tq_cluster::Transport::multicall`] batch and the round completes on
//! the paper's `w_l`/`r_l` quorum condition — sequential and
//! deterministic on [`tq_cluster::LocalTransport`], concurrent (one
//! round trip per level instead of one per member) on
//! [`tq_cluster::ChannelTransport`].
//!
//! ## Quickstart
//!
//! ```
//! use tq_cluster::{Cluster, LocalTransport};
//! use tq_trapezoid::{ProtocolConfig, TrapErcClient};
//!
//! // (9, 6) stripe; trapezoid of n-k+1 = 4 nodes: a=2, b=1, h=1.
//! // `build` prepends w_0 = ⌊b/2⌋+1; the slice covers levels 1..=h.
//! let config = ProtocolConfig::build(9, 6, 2, 1, 1, &[1]).unwrap();
//! let cluster = Cluster::new(9);
//! let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
//!
//! let blocks: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 64]).collect();
//! client.create_stripe(1, blocks.clone()).unwrap();
//!
//! // Write block 2, then read it back — even with its data node dead.
//! client.write_block(1, 2, &vec![0xAB; 64]).unwrap();
//! cluster.kill(2);
//! let out = client.read_block(1, 2).unwrap();
//! assert_eq!(out.bytes, vec![0xAB; 64]);
//! assert!(out.decoded());
//! ```

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod errors;
pub mod locking;
pub mod recovery;
mod rounds;
pub mod shard;
pub mod store;
pub mod trap_erc;
pub mod trap_fr;
pub mod version_matrix;
pub mod volume;

pub use baselines::{MajorityClient, RowaClient};
pub use config::ProtocolConfig;
pub use errors::{ProtocolError, VolumeError};
pub use locking::StripeLockManager;
pub use recovery::RebuildReport;
pub use shard::{ShardMap, ShardedStore};
pub use store::{
    BatchReads, BatchWrite, BatchWrites, BlockAddr, OpReport, QuorumStore, RoundStats, Store,
    StoreBuilder, StoreInfo,
};
pub use trap_erc::{ReadOutcome, ReadPath, ScrubReport, TrapErcClient, WriteOutcome};
pub use trap_fr::TrapFrClient;
pub use version_matrix::VersionMatrix;
pub use volume::{Volume, VolumeConfig};
