//! Per-block write locking — the "classical ways" for data concurrency.
//!
//! The paper scopes itself to the coherency protocol and waves at
//! concurrency control: "if some constraints like data concurrency can be
//! solved using classical ways, others like coherency protocols need some
//! adaptations" (§I). Algorithm 1 is indeed unsafe under write-write
//! races: the data-node `write(x)` carries no guard, so two writers can
//! install the same version number with different bytes while the parity
//! guards serialise on only one of them, leaving `N_i` inconsistent with
//! parity until a scrub.
//!
//! [`StripeLockManager`] supplies the classical fix: an exclusive lock
//! per (stripe, block). [`TrapErcClient::write_block_locked`] wraps
//! Algorithm 1 in that lock, restoring write-write safety without
//! touching the protocol itself.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tq_cluster::Transport;

use crate::errors::ProtocolError;
use crate::trap_erc::{TrapErcClient, WriteOutcome};

/// An in-process exclusive lock table keyed by (stripe id, block index).
///
/// Models a lock service co-located with the writers (one VM host, one
/// gateway): mutual exclusion among the writers that share it. Fairness
/// is parking-lot's; locks are released on guard drop, so a panicking
/// writer cannot leak a lock.
#[derive(Debug, Default)]
pub struct StripeLockManager {
    inner: Mutex<HashSet<(u64, usize)>>,
    released: Condvar,
}

/// RAII guard for one (stripe, block) lock.
#[derive(Debug)]
pub struct BlockLockGuard<'a> {
    manager: &'a StripeLockManager,
    key: (u64, usize),
}

impl StripeLockManager {
    /// Creates an empty lock table.
    pub fn new() -> Arc<Self> {
        Arc::new(StripeLockManager::default())
    }

    /// Blocks until the (stripe, block) lock is acquired.
    pub fn lock(&self, id: u64, block: usize) -> BlockLockGuard<'_> {
        let key = (id, block);
        let mut held = self.inner.lock();
        while held.contains(&key) {
            self.released.wait(&mut held);
        }
        held.insert(key);
        BlockLockGuard { manager: self, key }
    }

    /// Non-blocking acquisition attempt.
    pub fn try_lock(&self, id: u64, block: usize) -> Option<BlockLockGuard<'_>> {
        let key = (id, block);
        let mut held = self.inner.lock();
        if held.contains(&key) {
            None
        } else {
            held.insert(key);
            Some(BlockLockGuard { manager: self, key })
        }
    }

    /// Number of locks currently held (diagnostics).
    pub fn held_count(&self) -> usize {
        self.inner.lock().len()
    }
}

impl Drop for BlockLockGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.manager.inner.lock();
        held.remove(&self.key);
        // Wake every waiter; contenders re-check their own key.
        self.manager.released.notify_all();
    }
}

impl<T: Transport> TrapErcClient<T> {
    /// Algorithm 1 under a per-block exclusive lock: safe against
    /// write-write races among writers sharing `locks`.
    ///
    /// # Errors
    /// Same as [`TrapErcClient::write_block`].
    pub fn write_block_locked(
        &self,
        locks: &StripeLockManager,
        id: u64,
        block: usize,
        new: &[u8],
    ) -> Result<WriteOutcome, ProtocolError> {
        let _guard = locks.lock(id, block);
        self.write_block(id, block, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::trap_erc::ReadPath;
    use std::sync::Arc;
    use tq_cluster::{Cluster, LocalTransport};

    #[test]
    fn lock_basics() {
        let lm = StripeLockManager::new();
        let g1 = lm.lock(1, 0);
        assert_eq!(lm.held_count(), 1);
        assert!(lm.try_lock(1, 0).is_none(), "same key blocked");
        assert!(lm.try_lock(1, 1).is_some(), "different block fine");
        assert!(lm.try_lock(2, 0).is_some(), "different stripe fine");
        drop(g1);
        assert!(lm.try_lock(1, 0).is_some(), "released on drop");
    }

    #[test]
    fn lock_blocks_until_release() {
        let lm = StripeLockManager::new();
        let lm2 = Arc::clone(&lm);
        let guard = lm.lock(7, 3);
        let waiter = std::thread::spawn(move || {
            let _g = lm2.lock(7, 3);
            std::time::Instant::now()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        let before_release = std::time::Instant::now();
        drop(guard);
        let acquired_at = waiter.join().unwrap();
        assert!(
            acquired_at >= before_release,
            "waiter ran only after release"
        );
    }

    /// The race the paper leaves open, fixed by the lock: contending
    /// writers on one block serialise, every write commits, versions are
    /// strictly sequential, and N_i never diverges from parity (direct
    /// and decode reads agree without a scrub).
    #[test]
    fn locked_contending_writers_stay_consistent() {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client =
            Arc::new(TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap());
        client
            .create_stripe(1, (0..8).map(|i| vec![i as u8; 32]).collect())
            .unwrap();
        let lm = StripeLockManager::new();

        let writers: Vec<_> = (0..4)
            .map(|t| {
                let client = Arc::clone(&client);
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    let mut versions = Vec::new();
                    for round in 0..8u8 {
                        let payload = vec![t as u8 * 40 + round; 32];
                        let w = client.write_block_locked(&lm, 1, 0, &payload).unwrap();
                        versions.push(w.version);
                    }
                    versions
                })
            })
            .collect();
        let mut all_versions: Vec<u64> = writers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all_versions.sort_unstable();
        // 32 commits, versions exactly 1..=32 with no duplicates.
        assert_eq!(all_versions, (1..=32).collect::<Vec<u64>>());
        assert_eq!(lm.held_count(), 0);

        // No divergence: direct and decode reads agree *without* a scrub.
        let direct = client.read_block(1, 0).unwrap();
        assert_eq!(direct.path, ReadPath::Direct);
        assert_eq!(direct.version, 32);
        cluster.kill(0);
        let decoded = client.read_block(1, 0).unwrap();
        assert!(decoded.decoded());
        assert_eq!(decoded.bytes, direct.bytes);
        assert_eq!(decoded.version, 32);
    }
}
