//! Per-block write locking — the "classical ways" for data concurrency.
//!
//! The paper scopes itself to the coherency protocol and waves at
//! concurrency control: "if some constraints like data concurrency can be
//! solved using classical ways, others like coherency protocols need some
//! adaptations" (§I). Algorithm 1 is indeed unsafe under write-write
//! races: the data-node `write(x)` carries no guard, so two writers can
//! install the same version number with different bytes while the parity
//! guards serialise on only one of them, leaving `N_i` inconsistent with
//! parity until a scrub.
//!
//! [`StripeLockManager`] supplies the classical fix: an exclusive lock
//! per (stripe, block). [`TrapErcClient::write_block_locked`] wraps
//! Algorithm 1 in that lock, restoring write-write safety without
//! touching the protocol itself.
//!
//! The table is **sharded**: keys hash onto independent shards, each
//! with its own mutex and its own condvar. Writers contending on
//! different shards never touch the same mutex, and a release notifies
//! only its shard's waiters — releasing block A cannot thundering-herd
//! writers queued on unrelated blocks, as one global broadcast condvar
//! would. [`StripeLockManager::contended_wakeups`] counts wakeups that
//! found their key still held; the regression test pins it at zero for
//! cross-shard churn.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tq_cluster::Transport;

use crate::errors::ProtocolError;
use crate::trap_erc::{TrapErcClient, WriteOutcome};

/// Default shard count: comfortably above any plausible writer count so
/// distinct hot blocks almost never share a condvar.
const DEFAULT_LOCK_SHARDS: usize = 64;

/// One independent slice of the lock table.
#[derive(Debug, Default)]
struct LockShard {
    held: Mutex<HashSet<(u64, usize)>>,
    released: Condvar,
}

/// An in-process exclusive lock table keyed by (stripe id, block index).
///
/// Models a lock service co-located with the writers (one VM host, one
/// gateway): mutual exclusion among the writers that share it. Fairness
/// is parking-lot's; locks are released on guard drop, so a panicking
/// writer cannot leak a lock. Keys hash onto independent shards (see the
/// [module docs](self)), so disjoint writers neither serialise on one
/// mutex nor wake on each other's releases.
#[derive(Debug)]
pub struct StripeLockManager {
    shards: Box<[LockShard]>,
    contended_wakeups: AtomicU64,
}

impl Default for StripeLockManager {
    fn default() -> Self {
        StripeLockManager::with_shard_count(DEFAULT_LOCK_SHARDS)
    }
}

/// RAII guard for one (stripe, block) lock.
#[derive(Debug)]
pub struct BlockLockGuard<'a> {
    shard: &'a LockShard,
    key: (u64, usize),
}

/// SplitMix64 finalizer over the packed key, so neighbouring blocks of
/// one stripe land on unrelated shards.
fn mix_key(id: u64, block: usize) -> u64 {
    let mut z = id ^ (block as u64).rotate_left(32);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StripeLockManager {
    /// Creates an empty lock table with the default shard count.
    pub fn new() -> Arc<Self> {
        Arc::new(StripeLockManager::default())
    }

    /// Creates an empty lock table with `shards` independent shards
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Arc<Self> {
        Arc::new(StripeLockManager::with_shard_count(shards))
    }

    fn with_shard_count(shards: usize) -> Self {
        let shards = shards.max(1);
        StripeLockManager {
            shards: (0..shards).map(|_| LockShard::default()).collect(),
            contended_wakeups: AtomicU64::new(0),
        }
    }

    /// Number of independent lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a (stripe, block) key routes to — diagnostics and
    /// contention tests.
    pub fn shard_of(&self, id: u64, block: usize) -> usize {
        ((mix_key(id, block) as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Blocks until the (stripe, block) lock is acquired.
    pub fn lock(&self, id: u64, block: usize) -> BlockLockGuard<'_> {
        let key = (id, block);
        let shard = &self.shards[self.shard_of(id, block)];
        let mut held = shard.held.lock();
        while held.contains(&key) {
            shard.released.wait(&mut held);
            // Still held after a wakeup: we were woken for somebody
            // else's release (or lost the race) and must wait again.
            if held.contains(&key) {
                self.contended_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        }
        held.insert(key);
        BlockLockGuard { shard, key }
    }

    /// Non-blocking acquisition attempt.
    pub fn try_lock(&self, id: u64, block: usize) -> Option<BlockLockGuard<'_>> {
        let key = (id, block);
        let shard = &self.shards[self.shard_of(id, block)];
        let mut held = shard.held.lock();
        if held.contains(&key) {
            None
        } else {
            held.insert(key);
            Some(BlockLockGuard { shard, key })
        }
    }

    /// Number of locks currently held (diagnostics).
    pub fn held_count(&self) -> usize {
        self.shards.iter().map(|s| s.held.lock().len()).sum()
    }

    /// Wakeups that found their key still held — the thundering-herd
    /// figure of merit. Releases on other shards contribute nothing;
    /// within a shard, only genuine same-shard contention counts.
    pub fn contended_wakeups(&self) -> u64 {
        self.contended_wakeups.load(Ordering::Relaxed)
    }
}

impl Drop for BlockLockGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.shard.held.lock();
        held.remove(&self.key);
        // Wake this shard's waiters only; contenders re-check their key.
        self.shard.released.notify_all();
    }
}

impl<T: Transport> TrapErcClient<T> {
    /// Algorithm 1 under a per-block exclusive lock: safe against
    /// write-write races among writers sharing `locks`.
    ///
    /// # Errors
    /// Same as [`TrapErcClient::write_block`].
    pub fn write_block_locked(
        &self,
        locks: &StripeLockManager,
        id: u64,
        block: usize,
        new: &[u8],
    ) -> Result<WriteOutcome, ProtocolError> {
        let _guard = locks.lock(id, block);
        self.write_block(id, block, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::trap_erc::ReadPath;
    use std::sync::Arc;
    use tq_cluster::{Cluster, LocalTransport};

    #[test]
    fn lock_basics() {
        let lm = StripeLockManager::new();
        let g1 = lm.lock(1, 0);
        assert_eq!(lm.held_count(), 1);
        assert!(lm.try_lock(1, 0).is_none(), "same key blocked");
        assert!(lm.try_lock(1, 1).is_some(), "different block fine");
        assert!(lm.try_lock(2, 0).is_some(), "different stripe fine");
        drop(g1);
        assert!(lm.try_lock(1, 0).is_some(), "released on drop");
    }

    #[test]
    fn lock_blocks_until_release() {
        let lm = StripeLockManager::new();
        let lm2 = Arc::clone(&lm);
        let guard = lm.lock(7, 3);
        let waiter = std::thread::spawn(move || {
            let _g = lm2.lock(7, 3);
            std::time::Instant::now()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        let before_release = std::time::Instant::now();
        drop(guard);
        let acquired_at = waiter.join().unwrap();
        assert!(
            acquired_at >= before_release,
            "waiter ran only after release"
        );
    }

    #[test]
    fn single_shard_still_excludes() {
        // Degenerate shard count: everything shares one shard, and the
        // table must still be a correct lock.
        let lm = StripeLockManager::with_shards(1);
        assert_eq!(lm.shard_count(), 1);
        let g = lm.lock(1, 0);
        assert!(lm.try_lock(1, 0).is_none());
        assert!(lm.try_lock(9, 9).is_some(), "different key, same shard");
        drop(g);
        assert_eq!(lm.held_count(), 0);
    }

    /// The thundering-herd regression: a waiter parked on one key must
    /// not be woken by lock/unlock churn on keys of *other* shards. With
    /// the old single broadcast condvar every release woke every waiter
    /// (hundreds of contended wakeups here); per-shard condvars keep the
    /// count at zero.
    #[test]
    fn cross_shard_churn_does_not_wake_foreign_waiters() {
        let lm = StripeLockManager::new();
        // Find a churn key on a different shard than the contended key.
        let contended = (1u64, 0usize);
        let home = lm.shard_of(contended.0, contended.1);
        let churn = (0u64..)
            .map(|id| (id, 1usize))
            .find(|&(id, b)| lm.shard_of(id, b) != home)
            .expect("some key lands on another shard");

        let guard = lm.lock(contended.0, contended.1);
        let lm_waiter = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            let _g = lm_waiter.lock(contended.0, contended.1);
        });
        // Let the waiter park, then churn the foreign shard hard.
        std::thread::sleep(std::time::Duration::from_millis(30));
        for _ in 0..200 {
            drop(lm.lock(churn.0, churn.1));
        }
        assert_eq!(
            lm.contended_wakeups(),
            0,
            "foreign releases must not wake the parked waiter"
        );
        drop(guard);
        waiter.join().unwrap();
        assert_eq!(lm.held_count(), 0);
    }

    /// The race the paper leaves open, fixed by the lock: contending
    /// writers on one block serialise, every write commits, versions are
    /// strictly sequential, and N_i never diverges from parity (direct
    /// and decode reads agree without a scrub).
    #[test]
    fn locked_contending_writers_stay_consistent() {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client =
            Arc::new(TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap());
        client
            .create_stripe(1, (0..8).map(|i| vec![i as u8; 32]).collect())
            .unwrap();
        let lm = StripeLockManager::new();

        let writers: Vec<_> = (0..4)
            .map(|t| {
                let client = Arc::clone(&client);
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    let mut versions = Vec::new();
                    for round in 0..8u8 {
                        let payload = vec![t as u8 * 40 + round; 32];
                        let w = client.write_block_locked(&lm, 1, 0, &payload).unwrap();
                        versions.push(w.version);
                    }
                    versions
                })
            })
            .collect();
        let mut all_versions: Vec<u64> = writers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all_versions.sort_unstable();
        // 32 commits, versions exactly 1..=32 with no duplicates.
        assert_eq!(all_versions, (1..=32).collect::<Vec<u64>>());
        assert_eq!(lm.held_count(), 0);

        // No divergence: direct and decode reads agree *without* a scrub.
        let direct = client.read_block(1, 0).unwrap();
        assert_eq!(direct.path, ReadPath::Direct);
        assert_eq!(direct.version, 32);
        cluster.kill(0);
        let decoded = client.read_block(1, 0).unwrap();
        assert!(decoded.decoded());
        assert_eq!(decoded.bytes, direct.bytes);
        assert_eq!(decoded.version, 32);
    }
}
