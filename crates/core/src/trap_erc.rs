//! The TRAP-ERC protocol client — Algorithms 1 and 2 of the paper.
//!
//! Node mapping: cluster node `i` holds stripe block `i` (`0..k` data,
//! `k..n` parity). For each data block `b_i` the trapezoid members are
//! `{N_i} ∪ {N_k..N_{n-1}}` with `N_i` at level 0 (eq. 5), as computed by
//! [`tq_quorum::TrapErcSystem`].
//!
//! ## Fidelity notes (where the pseudocode under-specifies)
//!
//! * **Version guard placement** — Algorithm 1 reads `V(i, j−k)` from the
//!   parity node and then issues `add` if it matches (lines 25–28). We
//!   fold the comparison into the node-side `AddParity` request, which is
//!   the same decision made atomically (no TOCTOU window between the
//!   version read and the add).
//! * **"Any k updated nodes"** (Algorithm 2 line 34) — parity nodes carry
//!   a version *vector*; decoding mixes blocks from different nodes, so
//!   the k chosen blocks must reflect one stripe state. We group live
//!   parity columns by exact vector equality, take the largest group that
//!   is current for the target block, and add data nodes whose version
//!   matches that group's entry. Under sequential writes this finds every
//!   node the paper would call "updated".
//! * **Failed writes leave residue** — Algorithm 1 validates level by
//!   level and has no rollback; a write that fails at level `l` has
//!   already updated `≥ w_m` nodes at every level `m < l`. Reads may
//!   legitimately observe the new version (a classic quorum-protocol
//!   anomaly the paper inherits from \[12\]); the failure-injection tests
//!   pin down this behaviour.
//!
//! ## Integrity mode
//!
//! Every write carries the stripe's GF-linear cross-checksum state
//! (see [`tq_erasure::check`]): stripe creation installs the
//! data-block checksum vector on each parity node, and a delta write
//! updates exactly one vector entry in the same `AddParity` message
//! that folds the delta — checksums ride existing rounds, costing zero
//! extra network trips. Reads verify every fetched shard *before* it
//! reaches the decoder: a direct read is checked against the node's
//! stamped self-check, a decode input against the group's vector. A
//! mismatching shard counts as one more erasure — the read routes
//! around it and proceeds — and only when too few clean shards remain
//! does the read surface [`ProtocolError::Integrity`], never silently
//! wrong bytes. [`TrapErcClient::scrub_stripe`] reports *which* nodes
//! served corrupt bytes and repairs them with its push phase.
//!
//! ## Dispatch
//!
//! Every level loop runs through the [`QuorumRound`] engine: the level's
//! requests are scattered in one [`Transport::multicall`] batch and
//! gathered under the paper's quorum condition. Write levels use
//! [`QuorumRound::await_all`] (the validated *set* is the durability
//! statement; every member must still be attempted), read version checks
//! use [`QuorumRound::first_quorum`] (Algorithm 2 line 30 completes on
//! the `r_l`-th answer; stragglers are abandoned). On
//! `LocalTransport` this reproduces the seed's sequential behaviour
//! bit-for-bit; on `ChannelTransport` a level costs roughly its slowest
//! needed responder instead of the sum over members.

use bytes::Bytes;
use tq_cluster::{
    Lane, NodeError, NodeId, PlanOp, QuorumRound, Request, Response, RoundOutcome, Transport,
};
use tq_erasure::delta::block_delta;
use tq_erasure::{data_checks, expected_parity_check, verify_block, ReedSolomon};
use tq_gf256::check::block_check;
use tq_quorum::trapezoid::TrapErcSystem;

use crate::config::ProtocolConfig;
use crate::errors::ProtocolError;
use crate::rounds::{run_fused, run_recorded};
use crate::store::{BatchReads, BatchWrite, BatchWrites, BlockAddr, OpReport};
use crate::version_matrix::VersionMatrix;

/// How a read was served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadPath {
    /// Algorithm 2 Case 1: `N_i` held the latest version.
    Direct,
    /// Algorithm 2 Case 2: decoded from `k` consistent stripe nodes
    /// (their stripe indices, in the order fed to the codec).
    Decoded {
        /// The k nodes whose blocks were combined.
        nodes: Vec<usize>,
    },
}

/// Result of a successful read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The block contents at `version`.
    pub bytes: Vec<u8>,
    /// The version served.
    pub version: u64,
    /// Which case of Algorithm 2 served it.
    pub path: ReadPath,
    /// Round/message/straggler accounting for the operation (empty on
    /// batch items — the fused rounds are reported on the batch).
    pub report: OpReport,
}

impl ReadOutcome {
    /// `true` iff the decode path was taken.
    pub fn decoded(&self) -> bool {
        matches!(self.path, ReadPath::Decoded { .. })
    }
}

/// Records `node` as having served provably corrupt bytes (once).
fn record_corrupt(corrupt: &mut Vec<usize>, node: usize) {
    if !corrupt.contains(&node) {
        corrupt.push(node);
    }
}

/// What a scrub did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripe indices whose state was rewritten (live nodes).
    pub refreshed: Vec<usize>,
    /// Data block indices whose settle had to *supersede* residue: a
    /// failed write's version stamp was visible above the settled value
    /// (or the newest version was outright unrecoverable), so the
    /// recovered value was installed at a version above every observed
    /// stamp rather than rolling any node's counter back.
    pub salvaged: Vec<usize>,
    /// Stripe indices of nodes observed serving corrupt bytes during
    /// the pass — a client-side cross-checksum mismatch or a
    /// node-reported [`NodeError::Corrupt`]. The push phase re-installs
    /// every live node's state, so a node listed here that also appears
    /// in `refreshed` has been repaired.
    pub corrupt: Vec<usize>,
    /// Round/message accounting for the whole pass.
    pub report: OpReport,
}

/// Result of a successful write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The version the write installed (`old + 1`).
    pub version: u64,
    /// Stripe indices of nodes that validated the write, level-major.
    pub validated: Vec<usize>,
    /// Round/message/straggler accounting for the operation (empty on
    /// batch items — the fused rounds are reported on the batch).
    pub report: OpReport,
}

/// The TRAP-ERC client: one per (code, trapezoid, transport) binding.
///
/// The client is stateless between operations (all state lives on the
/// nodes), so one client instance can be shared across threads if the
/// transport is `Sync`.
#[derive(Debug)]
pub struct TrapErcClient<T: Transport> {
    config: ProtocolConfig,
    rs: ReedSolomon,
    /// Per-block trapezoid membership views, indexed by block.
    systems: Vec<TrapErcSystem>,
    transport: T,
    /// Pooled parity scratch sets for the re-encode paths (provisioning
    /// and scrub): each entry is one `parity_count`-buffer set handed to
    /// [`ReedSolomon::encode_into`], recycled instead of reallocated per
    /// stripe. A stack so concurrent scrubs each get their own set.
    scratch: parking_lot::Mutex<Vec<Vec<Vec<u8>>>>,
}

/// How many parity scratch sets the client keeps around; beyond this,
/// returned sets are dropped (bounds memory under a concurrency burst).
const SCRATCH_POOL_CAP: usize = 4;

impl<T: Transport> TrapErcClient<T> {
    /// Binds a configuration to a transport.
    ///
    /// # Errors
    /// [`ProtocolError::Shape`] if the transport exposes fewer nodes than
    /// the stripe needs.
    pub fn new(config: ProtocolConfig, transport: T) -> Result<Self, ProtocolError> {
        let n = config.params().n();
        if transport.node_count() < n {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        let systems = (0..config.params().k())
            .map(|i| config.system_for_block(i))
            .collect();
        Ok(TrapErcClient {
            rs: config.codec(),
            systems,
            config,
            transport,
            scratch: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Takes a pooled parity scratch set, sized to `block_len` bytes per
    /// buffer. Pair with [`TrapErcClient::put_scratch`].
    fn take_scratch(&self, block_len: usize) -> Vec<Vec<u8>> {
        let mut bufs = self.scratch.lock().pop().unwrap_or_default();
        bufs.resize_with(self.config.params().parity_count(), Vec::new);
        for buf in &mut bufs {
            // Length is all that matters: encode_into overwrites every
            // byte (linear_combination clears first), so stale pooled
            // contents are never observable and a full re-zero here
            // would just double-memset the hot path.
            buf.resize(block_len, 0);
        }
        bufs
    }

    /// Returns a scratch set to the pool (dropped when the pool is full).
    fn put_scratch(&self, bufs: Vec<Vec<u8>>) {
        let mut pool = self.scratch.lock();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(bufs);
        }
    }

    /// Re-encodes the stripe's parity into pooled scratch and builds the
    /// per-node install/repair payloads via `make_req`. The scratch set
    /// goes back to the pool before returning; payload `Bytes` are the
    /// only allocations that leave this function (the nodes adopt them
    /// refcounted, so the scratch itself cannot be moved in).
    fn encode_parity_calls(
        &self,
        data: &[&[u8]],
        mut make_req: impl FnMut(usize, Bytes) -> Request,
    ) -> Vec<(NodeId, Request)> {
        let mut parity = self.take_scratch(data[0].len());
        self.rs.encode_into(data, &mut parity);
        let calls = self
            .config
            .params()
            .parity_indices()
            .zip(&parity)
            .map(|(j, block)| (NodeId(j), make_req(j, Bytes::copy_from_slice(block))))
            .collect();
        self.put_scratch(parity);
        calls
    }

    /// The configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// The codec (exposed for verification in tests/benches).
    pub fn codec(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Borrow the transport (fault injection in experiments).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Provisions a stripe: installs the `k` data blocks and `n − k`
    /// encoded parity blocks, all at version 0, in one fan-out round over
    /// all `n` nodes. Requires every node live (provisioning is out of
    /// scope of the paper's availability model). First-wins: a stripe id
    /// that already exists is acknowledged without being reset (see
    /// [`QuorumStore::create`](crate::QuorumStore::create)).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-indexed failing node's
    /// error; [`ProtocolError::SizeMismatch`] on ragged input.
    pub fn create_stripe(&self, id: u64, data: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        let k = self.config.params().k();
        if data.len() != k {
            return Err(ProtocolError::SizeMismatch);
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(ProtocolError::SizeMismatch);
        }
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        // The stripe's cross-checksum vector rides the install round.
        let checks = data_checks(&refs);
        // Parity into pooled scratch (one fused pass per parity block).
        let parity_calls = self.encode_parity_calls(&refs, |_, bytes| Request::InitParity {
            id,
            bytes,
            k,
            checks: checks.clone(),
        });
        let mut calls: Vec<(NodeId, Request)> = Vec::with_capacity(self.config.params().n());
        for (i, block) in data.into_iter().enumerate() {
            // The caller's block becomes the wire payload (and, on the
            // node, the stored allocation) without a copy.
            calls.push((
                NodeId(i),
                Request::InitData {
                    id,
                    bytes: Bytes::from(block),
                },
            ));
        }
        calls.extend(parity_calls);
        let needed = calls.len();
        let mut report = OpReport::default();
        let outcome = run_recorded(
            &self.transport,
            QuorumRound::await_all(needed),
            None,
            calls,
            &mut report,
        );
        crate::rounds::require_all(&outcome)?;
        Ok(report)
    }

    /// **Algorithm 1** — writes value `new` to data block `i`.
    ///
    /// Line 15 first runs READBLOCK to obtain the old chunk and version
    /// (needed for the parity deltas), then walks the trapezoid level by
    /// level; every level must validate at least `w_l` nodes.
    ///
    /// # Errors
    /// [`ProtocolError::OldValueUnreadable`] if the embedded read fails;
    /// [`ProtocolError::WriteQuorumNotMet`] if some level validates fewer
    /// than `w_l` nodes; [`ProtocolError::SizeMismatch`] if `new` has the
    /// wrong length.
    pub fn write_block(
        &self,
        id: u64,
        i: usize,
        new: &[u8],
    ) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read_block(id, i)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        let mut out = self.write_block_with_hint(id, i, new, &old.bytes, old.version)?;
        // The embedded read's rounds belong to this operation's bill.
        let mut report = old.report;
        report.merge_from(std::mem::take(&mut out.report));
        out.report = report;
        Ok(out)
    }

    /// Algorithm 1 with the old chunk/version supplied by the caller —
    /// the writer that maintains a cache (or the experiment driver that
    /// tracks ground truth) skips the embedded read. With the hint, the
    /// write succeeds *iff* every level has `w_l` live members, which is
    /// exactly the predicate of eq. 8/9 — `tq-sim` uses this to validate
    /// the write-availability closed form.
    ///
    /// # Errors
    /// See [`TrapErcClient::write_block`], minus the embedded read.
    pub fn write_block_with_hint(
        &self,
        id: u64,
        i: usize,
        new: &[u8],
        old_chunk: &[u8],
        old_version: u64,
    ) -> Result<WriteOutcome, ProtocolError> {
        if new.len() != old_chunk.len() {
            return Err(ProtocolError::SizeMismatch);
        }
        let sys = &self.systems[i];
        let new_version = old_version + 1;
        // One raw-delta allocation for the whole write: every parity
        // member's `AddParity` shares it by refcount and carries its own
        // α_{j,i} for the node to fold in place.
        let raw_delta = Bytes::from(block_delta(old_chunk, new)?);
        // The written block's new cross-checksum, updating one entry of
        // each parity node's stored vector in the same message.
        let new_check = block_check(new);
        // One payload allocation for the whole write; every level's
        // `WriteData` shares it by refcount (and the accepting node
        // adopts it as the stored block without copying).
        let payload = Bytes::copy_from_slice(new);
        let mut validated = Vec::new();
        let mut report = OpReport::default();

        // Lines 16–38: level by level, from the top of the trapezoid.
        // Each level is one scatter-gather round: every member is always
        // attempted (await-all — durability wants the full validated
        // set), success requires w_l validations.
        for l in 0..sys.shape().num_levels() {
            let needed = sys.thresholds().write_threshold(l);
            let calls = self.write_level_calls(
                id,
                i,
                l,
                (&payload, &raw_delta, new_check),
                (old_version, new_version),
            );
            // Lines 35–37 live in the shared grading: fewer than w_l
            // validations fail the write at this level.
            crate::rounds::graded_write_level(
                &self.transport,
                l,
                needed,
                calls,
                &mut validated,
                &mut report,
            )?;
        }
        Ok(WriteOutcome {
            version: new_version,
            validated,
            report,
        })
    }

    /// Builds level `l`'s scatter for a write of block `i`: `write(x)` to
    /// `N_i`, a guarded delta fold to every other member (Algorithm 1
    /// lines 20 and 25–28).
    fn write_level_calls(
        &self,
        id: u64,
        i: usize,
        l: usize,
        (new, raw_delta, new_check): (&Bytes, &Bytes, u64),
        (old_version, new_version): (u64, u64),
    ) -> Vec<(NodeId, Request)> {
        self.systems[i]
            .level_members(l)
            .iter()
            .map(|&member| {
                let req = if member == i {
                    // Line 20: write x into N_i (refcounted clone of the
                    // write's single payload allocation).
                    Request::WriteData {
                        id,
                        bytes: new.clone(),
                        version: new_version,
                    }
                } else {
                    // Lines 25–28: guarded parity fold of α_{j,i}·(x − c).
                    // The raw delta is shared by refcount across every
                    // member and level; each node folds its own
                    // α_{j,i}·delta in place through the dispatched
                    // mul_add kernel — no per-member scaled copy here.
                    Request::AddParity {
                        id,
                        block_index: i,
                        delta: raw_delta.clone(),
                        expected_version: old_version,
                        new_version,
                        coeff: self.rs.coefficient(member, i).0,
                        new_check: Some(new_check),
                    }
                };
                (NodeId(member), req)
            })
            .collect()
    }

    /// **Algorithm 2** — reads data block `i`.
    ///
    /// Walks levels 0..=h; in each level polls members until
    /// `r_l = s_l − w_l + 1` have answered (the version check). Once a
    /// level completes, serves from `N_i` if it holds the latest version
    /// (Case 1) or decodes from `k` consistent nodes (Case 2).
    ///
    /// # Errors
    /// [`ProtocolError::VersionCheckFailed`] if no level completes;
    /// [`ProtocolError::NotEnoughForDecode`] if Case 2 lacks nodes;
    /// [`ProtocolError::Integrity`] if detected corruption (not absence)
    /// is what left fewer than `k` clean shards;
    /// [`ProtocolError::StripeMissing`] if nodes respond but none knows
    /// the object.
    pub fn read_block(&self, id: u64, i: usize) -> Result<ReadOutcome, ProtocolError> {
        let mut report = OpReport::default();
        let mut corrupt = Vec::new();
        let result = self.read_block_recorded(id, i, &mut report, &mut corrupt);
        result.map(|mut out| {
            out.report = report;
            out
        })
    }

    /// True when an armed health registry marks block `i`'s home node
    /// `N_i` a straggler: the read path then skips the `N_i` probe and
    /// direct fetch and reconstructs from `k` healthy members instead —
    /// the decode pool for block `i` never contains `N_i`, so a gray
    /// home node stays off the read's critical path. A dormant or
    /// absent registry never reroutes, keeping the default path
    /// bit-identical to the unhedged protocol.
    fn avoid_home(&self, i: usize) -> bool {
        self.transport
            .health()
            .is_some_and(|h| h.hedging_enabled() && h.straggler(i))
    }

    /// **Straggler salvage (extension)** — one fan-out round replacing
    /// the walk + probe + widen + fetch pipeline when [`avoid_home`]
    /// flags `N_i`: fetch `k` shards from the healthiest members
    /// (ranked data blocks topped up from parity) and let the parity
    /// replies' version vectors stand in for the level walk. The check
    /// is sound because every non-home member of every level is a
    /// parity node (eq. 5 membership) and any `r_l` members of a level
    /// intersect every completed write's `w_l` set — so once some level
    /// has `r_l` accepted columns, the newest block-`i` entry among all
    /// accepted columns is at least the last committed version, and any
    /// version observed at all was installed by a real write (the same
    /// residue visibility the walk admits). Any shortfall — too few
    /// healthy members, no level quorum, inconsistent, stale or corrupt
    /// shards — returns `None` and the caller falls back to the full
    /// Algorithm 2 path: the fast path may only save messages, never
    /// weaken the read.
    ///
    /// [`avoid_home`]: TrapErcClient::avoid_home
    fn read_around(
        &self,
        id: u64,
        i: usize,
        report: &mut OpReport,
        corrupt: &mut Vec<usize>,
    ) -> Option<ReadOutcome> {
        let health = self.transport.health()?;
        let (n, k) = (self.config.params().n(), self.config.params().k());
        let sys = &self.systems[i];
        // Healthy members only, best first: a one-round salvage cannot
        // route around a member that stalls it.
        let mut data: Vec<usize> = (0..k).filter(|&t| t != i && !health.straggler(t)).collect();
        let mut parity: Vec<usize> = (k..n).filter(|&p| !health.straggler(p)).collect();
        health.rank_nodes(&mut data);
        health.rank_nodes(&mut parity);
        // The walk's check needs r_l members of some level, and with the
        // home node off-limits the candidates are the level's healthy
        // parity members (every non-home member is a parity node). Pick
        // the level satisfiable with the fewest columns and pin its r_l
        // best-ranked members into the poll; their replies double as
        // decoder shards.
        let mut pinned: Vec<usize> = Vec::new();
        let mut best_cost = usize::MAX;
        for l in 0..sys.shape().num_levels() {
            let need = sys.thresholds().read_threshold(sys.shape(), l);
            let mut have: Vec<usize> = sys
                .level_members(l)
                .iter()
                .copied()
                .filter(|m| parity.contains(m))
                .collect();
            if have.len() >= need && need < best_cost {
                health.rank_nodes(&mut have);
                have.truncate(need);
                best_cost = need;
                pinned = have;
            }
        }
        if pinned.is_empty() {
            return None;
        }
        // Exactly k shards (when the pinned columns allow): data blocks
        // feed the decoder verbatim, so fill the remaining slots with
        // every healthy one and only then with spare parity.
        let data_take = data.len().min(k.saturating_sub(pinned.len()));
        let mut poll_parity = pinned;
        let spares: Vec<usize> = parity
            .iter()
            .copied()
            .filter(|p| !poll_parity.contains(p))
            .collect();
        let mut spares = spares.into_iter();
        while poll_parity.len() + data_take < k {
            poll_parity.push(spares.next()?);
        }
        let calls: Vec<(NodeId, Request)> = data[..data_take]
            .iter()
            .map(|&t| (NodeId(t), Request::ReadData { id }))
            .chain(
                poll_parity
                    .iter()
                    .map(|&p| (NodeId(p), Request::ReadParity { id })),
            )
            .collect();
        // Primary poll, then — only when it leaves fewer than k
        // mutually consistent shards (a write racing on another block
        // of the stripe, a stale or corrupt member) — one top-up round
        // polling the remaining healthy parity columns, whose fresher
        // vectors let the basis regroup. Two cheap rounds instead of
        // falling all the way back to the walk + widen + fetch
        // pipeline; only when both miss does the caller pay full price.
        let mut spare_calls: Vec<(NodeId, Request)> = spares
            .map(|p| (NodeId(p), Request::ReadParity { id }))
            .collect();
        let mut round_calls = calls;
        let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(2);
        while !round_calls.is_empty() {
            // The top-up is a replacement fetch — a retry in budget
            // terms; when the budget is dry the walk fallback decides.
            if !outcomes.is_empty() && !health.try_spend(Lane::Foreground) {
                break;
            }
            let outcome = run_recorded(
                &self.transport,
                QuorumRound::await_all(0),
                None,
                round_calls,
                report,
            );
            for rejected in &outcome.rejected {
                if matches!(rejected.error, NodeError::Corrupt) {
                    record_corrupt(corrupt, rejected.node.0);
                }
            }
            outcomes.push(outcome);
            if let Some(out) = self.salvage_assemble(i, &outcomes, corrupt) {
                return Some(out);
            }
            round_calls = std::mem::take(&mut spare_calls);
        }
        None
    }

    /// The gather half of [`read_around`]: from the accumulated salvage
    /// rounds, mirror the level check, pick the best consistent basis,
    /// validate every shard and decode. `None` means the replies in
    /// hand cannot yet produce a sound read.
    ///
    /// [`read_around`]: TrapErcClient::read_around
    fn salvage_assemble(
        &self,
        i: usize,
        outcomes: &[RoundOutcome],
        corrupt: &mut Vec<usize>,
    ) -> Option<ReadOutcome> {
        let k = self.config.params().k();
        let sys = &self.systems[i];
        let mut parity_replies: Vec<(usize, &Bytes, &Vec<u64>, &Vec<u64>)> = Vec::new();
        let mut data_replies: Vec<(usize, &Bytes, u64, u64)> = Vec::new();
        for outcome in outcomes {
            for accepted in outcome.accepted_in_issue_order() {
                match &accepted.response {
                    Response::Parity {
                        bytes,
                        versions,
                        checks,
                    } if versions.len() == k => {
                        parity_replies.push((accepted.node.0, bytes, versions, checks));
                    }
                    Response::Data {
                        bytes,
                        version,
                        check,
                    } => data_replies.push((accepted.node.0, bytes, *version, *check)),
                    _ => {}
                }
            }
        }

        // The level check, mirrored: some level must have r_l members
        // answering with version columns.
        let quorum = (0..sys.shape().num_levels()).any(|l| {
            let got = sys
                .level_members(l)
                .iter()
                .filter(|m| parity_replies.iter().any(|r| r.0 == **m))
                .count();
            got >= sys.thresholds().read_threshold(sys.shape(), l)
        });
        if !quorum {
            return None;
        }
        let latest = parity_replies.iter().map(|r| r.2[i]).max()?;

        // Basis selection, as in the widened decode: group parity
        // columns current for block i by exact vector, join data
        // replies whose live version matches the group's view of them,
        // keep the group maximising usable shards.
        let mut best_column: Option<&Vec<u64>> = None;
        let mut best_total = 0usize;
        let mut seen: Vec<&Vec<u64>> = Vec::new();
        for &(_, _, versions, _) in &parity_replies {
            if versions[i] != latest || seen.contains(&versions) {
                continue;
            }
            seen.push(versions);
            let total = parity_replies.iter().filter(|r| r.2 == versions).count()
                + data_replies.iter().filter(|r| versions[r.0] == r.2).count();
            if total > best_total {
                best_total = total;
                best_column = Some(versions);
            }
        }
        let column = best_column?;
        if best_total < k {
            return None;
        }

        // Shard validation is the decode path's verbatim: self-checks
        // first, then every survivor against the group's cross-checksum
        // vector; a provably-bad shard is attributed before falling
        // back. Data first keeps the decoder input order deterministic.
        let mut available: Vec<(usize, Vec<u8>)> = Vec::with_capacity(k);
        let mut vector: Option<&Vec<u64>> = None;
        for &(node, bytes, version, check) in &data_replies {
            if version != column[node] {
                continue;
            }
            if check != 0 && block_check(bytes) != check {
                record_corrupt(corrupt, node);
                continue;
            }
            available.push((node, bytes.to_vec()));
        }
        for &(node, bytes, versions, checks) in &parity_replies {
            if versions != column {
                continue;
            }
            if checks.len() == k {
                if block_check(bytes) != expected_parity_check(&self.rs, node, checks) {
                    record_corrupt(corrupt, node);
                    continue;
                }
                if vector.is_none() {
                    vector = Some(checks);
                }
            }
            available.push((node, bytes.to_vec()));
        }
        if let Some(checks) = vector {
            available.retain(|(node, bytes)| {
                if verify_block(&self.rs, *node, bytes, checks) {
                    true
                } else {
                    record_corrupt(corrupt, *node);
                    false
                }
            });
        }
        if available.len() < k {
            return None;
        }
        let refs: Vec<(usize, &[u8])> = available
            .iter()
            .map(|(idx, b)| (*idx, b.as_slice()))
            .collect();
        let bytes = self.rs.decode_block(i, &refs).ok()?;
        if let Some(checks) = vector {
            if !verify_block(&self.rs, i, &bytes, checks) {
                return None;
            }
        }
        Some(ReadOutcome {
            bytes,
            version: latest,
            path: ReadPath::Decoded {
                nodes: refs.iter().map(|&(idx, _)| idx).take(k).collect(),
            },
            report: OpReport::default(),
        })
    }

    /// Algorithm 2 with the rounds recorded into a caller-owned report
    /// (the scrub and batch paths bill several reads to one report) and
    /// provably-corrupt node indices collected into `corrupt`.
    fn read_block_recorded(
        &self,
        id: u64,
        i: usize,
        report: &mut OpReport,
        corrupt: &mut Vec<usize>,
    ) -> Result<ReadOutcome, ProtocolError> {
        // Straggler fast path: one healthy-member round instead of the
        // walk + probe + fetch pipeline; a miss rejoins the walk below.
        if self.avoid_home(i) {
            if let Some(out) = self.read_around(id, i, report, corrupt) {
                return Ok(out);
            }
        }
        let sys = &self.systems[i];
        let (n, k) = (self.config.params().n(), self.config.params().k());
        let mut matrix = VersionMatrix::new(n, k);
        let mut saw_not_found = false;
        let mut saw_success = false;

        for l in 0..sys.shape().num_levels() {
            let needed = sys.thresholds().read_threshold(sys.shape(), l);
            // One first-quorum round per level: the version check is
            // complete on the r_l-th answer (line 30); later members are
            // abandoned stragglers.
            let calls = self.version_level_calls(id, i, l);
            let outcome = run_recorded(
                &self.transport,
                QuorumRound::first_quorum(needed),
                Some(l),
                calls,
                report,
            );
            self.fold_versions_into(&mut matrix, &outcome);
            saw_not_found |= outcome.saw_error(|e| matches!(e, NodeError::NotFound));
            saw_success |= !outcome.accepted.is_empty();
            // Line 30: the check for this level is complete.
            if outcome.quorum_met() {
                let latest = matrix
                    .latest_version(i)
                    .expect("quorum met implies at least one version");
                // Line 31: compare against N_i's current version —
                // unless the health registry marks N_i a straggler, in
                // which case the read routes around it like an erasure
                // and goes straight to Case 2.
                let ni_version = if self.avoid_home(i) {
                    None
                } else {
                    match self.call_recorded(i, Request::VersionData { id }, report) {
                        Ok(Response::Version(v)) => Some(v),
                        _ => None,
                    }
                };
                if ni_version == Some(latest) {
                    // Case 1: direct read from N_i — but only if the bytes
                    // match the check N_i stamped at install time. A
                    // mismatch means N_i's copy (or the node itself, via
                    // `NodeError::Corrupt`) is provably bad: route around
                    // it through the decode path instead of serving it.
                    match self.call_recorded(i, Request::ReadData { id }, report) {
                        Ok(Response::Data {
                            bytes,
                            version,
                            check,
                        }) if version == latest => {
                            if check == 0 || block_check(&bytes) == check {
                                return Ok(ReadOutcome {
                                    bytes: bytes.to_vec(),
                                    version: latest,
                                    path: ReadPath::Direct,
                                    report: OpReport::default(),
                                });
                            }
                            record_corrupt(corrupt, i);
                        }
                        Err(NodeError::Corrupt) => record_corrupt(corrupt, i),
                        _ => {}
                    }
                    // N_i died, changed, or served corrupt bytes between
                    // the version query and the read; fall through to the
                    // decode path.
                }
                // Case 2: reconstruct from k updated nodes.
                return self.decode_block_at(id, i, latest, &mut matrix, report, corrupt);
            }
            // Level incomplete (fewer than r_l live members): try the
            // next level, keeping whatever columns we already collected.
        }
        if saw_not_found && !saw_success {
            return Err(ProtocolError::StripeMissing);
        }
        // Line 39: data is not readable.
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Builds level `l`'s version-check scatter for block `i`
    /// (Algorithm 2 line 30): scalar version from `N_i`, version vector
    /// from every other member.
    fn version_level_calls(&self, id: u64, i: usize, l: usize) -> Vec<(NodeId, Request)> {
        self.systems[i]
            .level_members(l)
            .iter()
            .map(|&member| {
                let req = if member == i {
                    Request::VersionData { id }
                } else {
                    Request::VersionVector { id }
                };
                (NodeId(member), req)
            })
            .collect()
    }

    /// Case 2 of Algorithm 2: decode block `i` at version `latest` from
    /// `k` mutually consistent live nodes, verifying every fetched shard
    /// against the stripe's cross-checksum vector before it may enter
    /// the decoder.
    fn decode_block_at(
        &self,
        id: u64,
        i: usize,
        latest: u64,
        matrix: &mut VersionMatrix,
        report: &mut OpReport,
        corrupt: &mut Vec<usize>,
    ) -> Result<ReadOutcome, ProtocolError> {
        let k = self.config.params().k();
        // Widen V beyond the nodes the version check happened to probe:
        // ask every parity node for its column and every data node for
        // its version ("any k nodes out of n", line 34) — one fan-out
        // round, every reply awaited.
        let mut calls: Vec<(NodeId, Request)> = Vec::new();
        for j in self.config.params().parity_indices() {
            if matrix.get(0, j).is_none() {
                calls.push((NodeId(j), Request::VersionVector { id }));
            }
        }
        for t in (0..k).filter(|&t| t != i) {
            if matrix.data_version(t).is_none() {
                calls.push((NodeId(t), Request::VersionData { id }));
            }
        }
        let widen = run_recorded(
            &self.transport,
            QuorumRound::await_all(0),
            None,
            calls,
            report,
        );
        self.fold_versions_into(matrix, &widen);

        // Every group of parity nodes sharing one exact version vector
        // (with block i at `latest`) is a valid decode basis; data nodes
        // whose live version matches the group's view of them can join.
        // Pick the group maximising usable nodes — the largest parity
        // group is not always the one with the most matching data nodes.
        let groups = matrix.consistent_parity_groups(i, latest);
        let mut best: Option<(Vec<usize>, Vec<u64>, Vec<usize>)> = None;
        let mut best_total = 0usize;
        for (parity_members, column) in groups {
            let data_members: Vec<usize> = (0..k)
                .filter(|&t| t != i && matrix.data_version(t) == Some(column[t]))
                .collect();
            let total = parity_members.len() + data_members.len();
            if total > best_total {
                best_total = total;
                best = Some((parity_members, column, data_members));
            }
        }
        let Some((mut parity_members, column, mut data_members)) = best else {
            return Err(ProtocolError::NotEnoughForDecode {
                needed: k,
                found: 0,
            });
        };

        // Members of the chosen group in fetch-preference order: data
        // blocks first (they feed the decode verbatim), then parity.
        // Within each segment an armed health registry ranks members —
        // circuit-open and slow nodes sink to the spare end of the pool,
        // so the first fetch round lands on the healthiest k. With no
        // registry (or a cold one) the rank is the identity and the
        // fetch order is the seed's.
        if let Some(health) = self.transport.health() {
            health.rank_nodes(&mut data_members);
            health.rank_nodes(&mut parity_members);
        }
        let mut pool: Vec<usize> = Vec::with_capacity(data_members.len() + parity_members.len());
        pool.extend(data_members);
        pool.extend(parity_members);
        if pool.len() < k {
            return Err(ProtocolError::NotEnoughForDecode {
                needed: k,
                found: pool.len(),
            });
        }

        // Fetch k of the pool, re-validating versions *and checksums* at
        // read time (a node may have changed, died or rotted since the
        // version pass). A shard that fails verification is one more
        // erasure: spare members of the same group are fetched in
        // follow-up rounds until k clean shards are in hand or the group
        // runs dry. Issue order keeps the decode input deterministic.
        let corrupt_before = corrupt.len();
        let mut available: Vec<(usize, Vec<u8>)> = Vec::with_capacity(k);
        let mut vector: Option<Vec<u64>> = None;
        let mut cursor = 0usize;
        while available.len() < k && cursor < pool.len() {
            // Every round after the first is a replacement fetch — a
            // retry in budget terms, re-requesting shards the previous
            // round failed to produce. It must win a token from the
            // transport's retry budget; when the budget is dry the read
            // gives up with the shards in hand rather than amplify load
            // on an already-struggling group. Without a health registry
            // the loop is bounded only by the pool, as before.
            if cursor > 0 {
                if let Some(health) = self.transport.health() {
                    if !health.try_spend(Lane::Foreground) {
                        break;
                    }
                }
            }
            let want = (k - available.len()).min(pool.len() - cursor);
            let batch = &pool[cursor..cursor + want];
            cursor += want;
            let fetch: Vec<(NodeId, Request)> = batch
                .iter()
                .map(|&node| {
                    let req = if node < k {
                        Request::ReadData { id }
                    } else {
                        Request::ReadParity { id }
                    };
                    (NodeId(node), req)
                })
                .collect();
            // Gather-all with no enforced threshold: sufficiency is
            // decided here, after per-shard validation.
            let outcome = run_recorded(
                &self.transport,
                QuorumRound::await_all(0),
                None,
                fetch,
                report,
            );
            // Nodes that refused the fetch with a self-check failure are
            // provably corrupt even though they returned no bytes.
            for rejected in &outcome.rejected {
                if matches!(rejected.error, NodeError::Corrupt) {
                    record_corrupt(corrupt, rejected.node.0);
                }
            }
            // First pass: version re-validation plus each shard's *own*
            // check (stamped by the serving node at install time). A
            // parity reply also carries the stripe's cross-checksum
            // vector; the first verified one becomes the reference
            // vector for the uniform cross-check below.
            for accepted in outcome.accepted_in_issue_order() {
                let node = accepted.node.0;
                match &accepted.response {
                    Response::Data {
                        bytes,
                        version,
                        check,
                    } if *version == column[node] => {
                        if *check != 0 && block_check(bytes) != *check {
                            record_corrupt(corrupt, node);
                            continue;
                        }
                        available.push((node, bytes.to_vec()));
                    }
                    Response::Parity {
                        bytes,
                        versions,
                        checks,
                    } if *versions == column => {
                        if checks.len() == k {
                            // The parity block's expected check is a
                            // linear combination of the data checks —
                            // derivable from the vector the node itself
                            // served.
                            if block_check(bytes) != expected_parity_check(&self.rs, node, checks) {
                                record_corrupt(corrupt, node);
                                continue;
                            }
                            if vector.is_none() {
                                vector = Some(checks.clone());
                            }
                        }
                        available.push((node, bytes.to_vec()));
                    }
                    _ => {}
                }
            }
            // Second pass: hold every candidate shard against the
            // reference cross-checksum vector. This catches data blocks
            // from nodes whose self-check was unknown
            // (legacy/invalidated, check == 0) or whose stamp was
            // tampered alongside the bytes. Idempotent across rounds.
            if let Some(checks) = &vector {
                available.retain(|(node, bytes)| {
                    if verify_block(&self.rs, *node, bytes, checks) {
                        true
                    } else {
                        record_corrupt(corrupt, *node);
                        false
                    }
                });
            }
        }
        if available.len() < k {
            // Distinguish "nodes are missing/stale" from "nodes are
            // provably lying": only the latter is an integrity verdict.
            return Err(if corrupt.len() > corrupt_before {
                ProtocolError::Integrity {
                    needed: k,
                    clean: available.len(),
                    corrupt: corrupt.clone(),
                }
            } else {
                ProtocolError::NotEnoughForDecode {
                    needed: k,
                    found: available.len(),
                }
            });
        }
        let refs: Vec<(usize, &[u8])> = available
            .iter()
            .map(|(idx, b)| (*idx, b.as_slice()))
            .collect();
        let bytes = self.rs.decode_block(i, &refs)?;
        // Belt-and-suspenders: the decode of verified inputs is already
        // consistent by linearity, but the 64-bit check is cheap and a
        // collision on every input simultaneously is the only escape.
        if let Some(checks) = &vector {
            if !verify_block(&self.rs, i, &bytes, checks) {
                return Err(ProtocolError::Integrity {
                    needed: k,
                    clean: 0,
                    corrupt: corrupt.clone(),
                });
            }
        }
        Ok(ReadOutcome {
            bytes,
            version: latest,
            path: ReadPath::Decoded {
                nodes: refs.iter().map(|&(idx, _)| idx).take(k).collect(),
            },
            report: OpReport::default(),
        })
    }

    /// **Scrub (extension)** — the paper defines no repair path, so a
    /// node that misses a write stays stale forever (its `AddParity`
    /// guard keeps rejecting later deltas). This extension restores full
    /// redundancy, the way production stores run anti-entropy:
    ///
    /// 1. read every data block through Algorithm 2 (quorum reads, so
    ///    only committed-or-residue state is used); if a block is
    ///    *poisoned* — a failed write's residue version is visible in
    ///    version checks but unrecoverable from any k consistent nodes,
    ///    which bricks the paper's protocol permanently — **salvage** it:
    ///    recover the newest version that still decodes and install it at
    ///    a version *above* the residue, superseding it;
    /// 2. re-encode the parity blocks from that state;
    /// 3. push the reconstructed state to every *live* node — data nodes
    ///    get `write(x)`, parity nodes get the repair primitive
    ///    `WriteParity` with the matching version vector.
    ///
    /// Must run quiesced (no concurrent writers to this stripe), like an
    /// offline fsck; concurrent writes could be clobbered.
    ///
    /// Scrub traffic is maintenance traffic: its fan-out rounds travel
    /// the background lane (the wire frames carry the background flag,
    /// and the retry budget keeps a reserve that background spends may
    /// not touch), and with an armed health registry its replacement
    /// fetches prefer healthy members over slow or circuit-open ones.
    ///
    /// # Errors
    /// Propagates a block whose *every* version is unrecoverable (more
    /// than n − k nodes down).
    pub fn scrub_stripe(&self, id: u64) -> Result<ScrubReport, ProtocolError> {
        let k = self.config.params().k();
        let mut data = Vec::with_capacity(k);
        let mut versions = Vec::with_capacity(k);
        let mut salvaged = Vec::new();
        let mut corrupt = Vec::new();
        let mut report = OpReport::default();
        for i in 0..k {
            match self.read_block_recorded(id, i, &mut report, &mut corrupt) {
                Ok(out) => {
                    versions.push(out.version);
                    data.push(out.bytes);
                }
                Err(ProtocolError::NotEnoughForDecode { .. } | ProtocolError::Integrity { .. }) => {
                    // Poisoned (or corrupted past the clean-shard floor):
                    // chase older versions for the newest one that still
                    // decodes, then supersede the residue.
                    let (bytes, recovered, max_observed) =
                        self.best_recoverable(id, i, &mut report, &mut corrupt)?;
                    versions.push(if recovered < max_observed {
                        max_observed + 1
                    } else {
                        recovered
                    });
                    data.push(bytes);
                    salvaged.push(i);
                }
                Err(e) => return Err(e),
            }
        }
        // Residue poll: every live node's version state. `WriteData` /
        // `WriteParity` are monotone (a push never regresses a node), so
        // a node holding a failed write's residue *above* the settled
        // version would reject an incomparable push and stay inconsistent
        // forever. Instead, supersede: any block whose settled version is
        // exceeded somewhere gets re-installed above the residue — the
        // same rule the replication repair and the salvage path apply.
        let mut poll_calls: Vec<(NodeId, Request)> = Vec::with_capacity(self.config.params().n());
        for t in 0..k {
            poll_calls.push((NodeId(t), Request::VersionData { id }));
        }
        for j in self.config.params().parity_indices() {
            poll_calls.push((NodeId(j), Request::VersionVector { id }));
        }
        let poll = run_recorded(
            &self.transport,
            QuorumRound::await_all(0).background(),
            None,
            poll_calls,
            &mut report,
        );
        let mut vmax = versions.clone();
        for accepted in &poll.accepted {
            match &accepted.response {
                Response::Version(v) => {
                    let i = accepted.node.0;
                    vmax[i] = vmax[i].max(*v);
                }
                Response::Versions(col) => {
                    for (entry, seen) in vmax.iter_mut().zip(col) {
                        *entry = (*entry).max(*seen);
                    }
                }
                _ => {}
            }
        }
        for (i, version) in versions.iter_mut().enumerate() {
            if vmax[i] > *version {
                *version = vmax[i] + 1;
                if !salvaged.contains(&i) {
                    salvaged.push(i);
                }
            }
        }
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        // Fresh cross-checksum vector for the reconstructed state: the
        // push below re-stamps every node — including any that served
        // corrupt bytes, which is the repair.
        let stripe_checks = data_checks(&refs);
        // Audit the parity shards explicitly: the data-block pass above
        // serves healthy blocks straight from their N_i (Case 1) and
        // would never observe a rotten parity replica. Judge only
        // replicas claiming the settled version column — stale ones are
        // legitimately different and get refreshed by the push anyway.
        let audit_calls: Vec<(NodeId, Request)> = self
            .config
            .params()
            .parity_indices()
            .map(|j| (NodeId(j), Request::ReadParity { id }))
            .collect();
        let audit = run_recorded(
            &self.transport,
            QuorumRound::await_all(0).background(),
            None,
            audit_calls,
            &mut report,
        );
        for rejected in &audit.rejected {
            if matches!(rejected.error, NodeError::Corrupt) {
                record_corrupt(&mut corrupt, rejected.node.0);
            }
        }
        for accepted in &audit.accepted {
            if let Response::Parity {
                bytes,
                versions: col,
                ..
            } = &accepted.response
            {
                let j = accepted.node.0;
                if *col == versions
                    && block_check(bytes) != expected_parity_check(&self.rs, j, &stripe_checks)
                {
                    record_corrupt(&mut corrupt, j);
                }
            }
        }
        // Re-encode into the pooled scratch set — scrubbing a volume is
        // one of these per stripe, and the pool keeps it allocation-flat.
        let parity_calls = self.encode_parity_calls(&refs, |_, bytes| Request::WriteParity {
            id,
            bytes,
            versions: versions.clone(),
            checks: stripe_checks.clone(),
        });
        // Push the reconstructed state to every node in one round; only
        // live nodes ack and are reported refreshed.
        let mut calls: Vec<(NodeId, Request)> = Vec::with_capacity(self.config.params().n());
        for (i, block) in data.into_iter().enumerate() {
            calls.push((
                NodeId(i),
                Request::WriteData {
                    id,
                    bytes: Bytes::from(block),
                    version: versions[i],
                },
            ));
        }
        calls.extend(parity_calls);
        let outcome = run_recorded(
            &self.transport,
            QuorumRound::await_all(0).background(),
            None,
            calls,
            &mut report,
        );
        let refreshed = outcome
            .accepted_in_issue_order()
            .iter()
            .map(|a| a.node.0)
            .collect();
        corrupt.sort_unstable();
        corrupt.dedup();
        Ok(ScrubReport {
            refreshed,
            salvaged,
            corrupt,
            report,
        })
    }

    /// Salvage search: the newest version of block `i` recoverable from
    /// the currently-live nodes. Returns `(bytes, recovered_version,
    /// max_observed_version)`.
    fn best_recoverable(
        &self,
        id: u64,
        i: usize,
        report: &mut OpReport,
        corrupt: &mut Vec<usize>,
    ) -> Result<(Vec<u8>, u64, u64), ProtocolError> {
        let (n, k) = (self.config.params().n(), self.config.params().k());
        let mut matrix = VersionMatrix::new(n, k);
        // Gather everything live in one fan-out round: N_i's
        // bytes+version, every parity column, every other data version.
        let mut calls: Vec<(NodeId, Request)> = Vec::with_capacity(n);
        calls.push((NodeId(i), Request::ReadData { id }));
        for j in self.config.params().parity_indices() {
            calls.push((NodeId(j), Request::VersionVector { id }));
        }
        for t in (0..k).filter(|&t| t != i) {
            calls.push((NodeId(t), Request::VersionData { id }));
        }
        let outcome = run_recorded(
            &self.transport,
            QuorumRound::await_all(0).background(),
            None,
            calls,
            report,
        );
        let mut ni = None;
        for accepted in &outcome.accepted {
            if let Response::Data {
                bytes,
                version,
                check,
            } = &accepted.response
            {
                matrix.set_data_version(i, *version);
                // A self-check mismatch disqualifies N_i's copy from the
                // salvage shortcut but its version still counts — the
                // decode path below can rebuild that version cleanly.
                if *check == 0 || block_check(bytes) == *check {
                    ni = Some((bytes.to_vec(), *version));
                } else {
                    record_corrupt(corrupt, i);
                }
            }
        }
        for rejected in &outcome.rejected {
            if matches!(rejected.error, NodeError::Corrupt) {
                record_corrupt(corrupt, rejected.node.0);
            }
        }
        self.fold_versions_into(&mut matrix, &outcome);
        let mut candidates: Vec<u64> = self
            .config
            .params()
            .parity_indices()
            .filter_map(|j| matrix.get(i, j))
            .chain(ni.as_ref().map(|&(_, v)| v))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let Some(&max_observed) = candidates.last() else {
            return Err(ProtocolError::VersionCheckFailed);
        };
        for &v in candidates.iter().rev() {
            if let Some((bytes, niv)) = &ni {
                if *niv == v {
                    return Ok((bytes.clone(), v, max_observed));
                }
            }
            if let Ok(out) = self.decode_block_at(id, i, v, &mut matrix, report, corrupt) {
                return Ok((out.bytes, v, max_observed));
            }
        }
        Err(ProtocolError::NotEnoughForDecode {
            needed: k,
            found: 0,
        })
    }

    /// **Batched Algorithm 2** — reads many blocks (possibly across
    /// stripes) in *fused* per-level fan-outs: one
    /// [`tq_cluster::MultiRound`] scatter per trapezoid level carries
    /// every pending block's version check, one fused fetch round serves
    /// all current `N_i` copies. The round count stays flat as the batch
    /// grows, instead of scaling with the number of blocks.
    pub fn read_blocks(&self, addrs: &[BlockAddr]) -> BatchReads {
        let (n, k) = (self.config.params().n(), self.config.params().k());
        let mut report = OpReport::default();

        struct ItemState {
            matrix: VersionMatrix,
            latest: Option<u64>,
            saw_not_found: bool,
            saw_success: bool,
            done: Option<Result<ReadOutcome, ProtocolError>>,
        }
        let mut states: Vec<ItemState> = addrs
            .iter()
            .map(|addr| ItemState {
                matrix: VersionMatrix::new(n, k),
                latest: None,
                saw_not_found: false,
                saw_success: false,
                done: (addr.block >= k).then_some(Err(ProtocolError::Misconfigured(
                    "block index outside the stripe",
                ))),
            })
            .collect();

        // Straggler fast path, per item: a block whose home node is
        // flagged skips the fused walk entirely when the one-round
        // salvage lands (see `read_around`); a miss rejoins the normal
        // path below.
        for (idx, st) in states.iter_mut().enumerate() {
            if st.done.is_none() && self.avoid_home(addrs[idx].block) {
                if let Some(out) = self.read_around(
                    addrs[idx].stripe,
                    addrs[idx].block,
                    &mut report,
                    &mut Vec::new(),
                ) {
                    st.done = Some(Ok(out));
                }
            }
        }

        // Fused version checks, level by level; a block leaves the
        // pending set once some level completes its check (line 30).
        for l in 0..self.config.shape().num_levels() {
            let pending: Vec<usize> = (0..states.len())
                .filter(|&idx| states[idx].done.is_none() && states[idx].latest.is_none())
                .collect();
            if pending.is_empty() {
                break;
            }
            let ops: Vec<PlanOp> = pending
                .iter()
                .map(|&idx| {
                    let i = addrs[idx].block;
                    let sys = &self.systems[i];
                    PlanOp {
                        round: QuorumRound::first_quorum(
                            sys.thresholds().read_threshold(sys.shape(), l),
                        ),
                        calls: self.version_level_calls(addrs[idx].stripe, i, l),
                    }
                })
                .collect();
            let outcomes = run_fused(&self.transport, Some(l), ops, &mut report);
            for (&idx, outcome) in pending.iter().zip(&outcomes) {
                let st = &mut states[idx];
                self.fold_versions_into(&mut st.matrix, outcome);
                st.saw_not_found |= outcome.saw_error(|e| matches!(e, NodeError::NotFound));
                st.saw_success |= !outcome.accepted.is_empty();
                if outcome.quorum_met() {
                    st.latest = Some(
                        st.matrix
                            .latest_version(addrs[idx].block)
                            .expect("quorum met implies at least one version"),
                    );
                }
            }
        }
        for st in &mut states {
            if st.done.is_none() && st.latest.is_none() {
                st.done = Some(Err(if st.saw_not_found && !st.saw_success {
                    ProtocolError::StripeMissing
                } else {
                    ProtocolError::VersionCheckFailed
                }));
            }
        }

        // One fused probe for the N_i versions the level rounds did not
        // happen to observe (line 31's comparison, batched). Blocks
        // whose home node the health registry marks a straggler skip
        // the probe — they are headed for the decode path regardless.
        let probe: Vec<usize> = (0..states.len())
            .filter(|&idx| {
                states[idx].done.is_none()
                    && states[idx].matrix.data_version(addrs[idx].block).is_none()
                    && !self.avoid_home(addrs[idx].block)
            })
            .collect();
        if !probe.is_empty() {
            let ops: Vec<PlanOp> = probe
                .iter()
                .map(|&idx| PlanOp {
                    round: QuorumRound::await_all(0),
                    calls: vec![(
                        NodeId(addrs[idx].block),
                        Request::VersionData {
                            id: addrs[idx].stripe,
                        },
                    )],
                })
                .collect();
            let outcomes = run_fused(&self.transport, None, ops, &mut report);
            for (&idx, outcome) in probe.iter().zip(&outcomes) {
                let st = &mut states[idx];
                self.fold_versions_into(&mut st.matrix, outcome);
            }
        }

        // One fused fetch for every block whose N_i is current (Case 1);
        // blocks it cannot serve — and blocks routing around a
        // straggler home node — fall through to the decode path.
        let direct: Vec<usize> = (0..states.len())
            .filter(|&idx| {
                states[idx].done.is_none()
                    && states[idx].matrix.data_version(addrs[idx].block) == states[idx].latest
                    && !self.avoid_home(addrs[idx].block)
            })
            .collect();
        if !direct.is_empty() {
            let ops: Vec<PlanOp> = direct
                .iter()
                .map(|&idx| PlanOp {
                    round: QuorumRound::await_all(0),
                    calls: vec![(
                        NodeId(addrs[idx].block),
                        Request::ReadData {
                            id: addrs[idx].stripe,
                        },
                    )],
                })
                .collect();
            let outcomes = run_fused(&self.transport, None, ops, &mut report);
            for (&idx, outcome) in direct.iter().zip(&outcomes) {
                let st = &mut states[idx];
                if let Some(accepted) = outcome.accepted.first() {
                    if let Response::Data {
                        bytes,
                        version,
                        check,
                    } = &accepted.response
                    {
                        // Same guard as the single-read Case 1: a stale
                        // version *or* a checksum mismatch drops the item
                        // through to the decode path.
                        if Some(*version) == st.latest
                            && (*check == 0 || block_check(bytes) == *check)
                        {
                            st.done = Some(Ok(ReadOutcome {
                                bytes: bytes.to_vec(),
                                version: *version,
                                path: ReadPath::Direct,
                                report: OpReport::default(),
                            }));
                        }
                    }
                }
            }
        }

        // Case 2 for the leftovers: per-block decode (the uncommon,
        // failure-mode path — fusing it would complicate the consistent
        // group selection for no steady-state gain).
        for (idx, st) in states.iter_mut().enumerate() {
            if st.done.is_none() {
                let latest = st.latest.expect("leftover items have a version");
                st.done = Some(self.decode_block_at(
                    addrs[idx].stripe,
                    addrs[idx].block,
                    latest,
                    &mut st.matrix,
                    &mut report,
                    &mut Vec::new(),
                ));
            }
        }

        BatchReads {
            outcomes: states
                .into_iter()
                .map(|st| st.done.expect("every item resolved"))
                .collect(),
            report,
        }
    }

    /// **Batched Algorithm 1** — writes many blocks in fused per-level
    /// fan-outs: the embedded READBLOCKs run as one [`read_blocks`]
    /// batch, then every surviving block's level-`l` scatter (the data
    /// write and the guarded parity folds) is fused into one round per
    /// level. Addresses must be distinct.
    ///
    /// [`read_blocks`]: TrapErcClient::read_blocks
    pub fn write_blocks(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        let k = self.config.params().k();
        let mut results: Vec<Option<Result<WriteOutcome, ProtocolError>>> = vec![None; items.len()];

        // Input validation: range + duplicate addresses.
        crate::rounds::flag_duplicates(items.iter().map(|it| it.addr), &mut results);
        for (idx, item) in items.iter().enumerate() {
            if item.addr.block >= k {
                results[idx] = Some(Err(ProtocolError::Misconfigured(
                    "block index outside the stripe",
                )));
            }
        }

        // Fused embedded read (Algorithm 1 line 15 for the whole batch).
        let read_idx: Vec<usize> = (0..items.len())
            .filter(|&idx| results[idx].is_none())
            .collect();
        let addrs: Vec<BlockAddr> = read_idx.iter().map(|&idx| items[idx].addr).collect();
        let reads = self.read_blocks(&addrs);
        let mut report = reads.report;

        struct Alive {
            idx: usize,
            /// The item's single payload allocation, shared by every
            /// level's `WriteData` clone.
            payload: Bytes,
            /// One refcounted raw-delta allocation per item, shared by
            /// every parity member's `AddParity` across all levels.
            raw_delta: Bytes,
            new_check: u64,
            old_version: u64,
            new_version: u64,
            validated: Vec<usize>,
        }
        let mut alive: Vec<Alive> = Vec::with_capacity(read_idx.len());
        for (&idx, old) in read_idx.iter().zip(reads.outcomes) {
            match old {
                Ok(old) => {
                    if items[idx].bytes.len() != old.bytes.len() {
                        results[idx] = Some(Err(ProtocolError::SizeMismatch));
                        continue;
                    }
                    match block_delta(&old.bytes, items[idx].bytes) {
                        Ok(raw_delta) => alive.push(Alive {
                            idx,
                            payload: Bytes::copy_from_slice(items[idx].bytes),
                            raw_delta: Bytes::from(raw_delta),
                            new_check: block_check(items[idx].bytes),
                            old_version: old.version,
                            new_version: old.version + 1,
                            validated: Vec::new(),
                        }),
                        Err(e) => results[idx] = Some(Err(e.into())),
                    }
                }
                Err(e) => {
                    results[idx] = Some(Err(ProtocolError::OldValueUnreadable(Box::new(e))));
                }
            }
        }

        // Fused write levels: every surviving block's level-l scatter in
        // one round; a block failing its w_l grade leaves the batch
        // (Algorithm 1 stops at the failed level, residue and all).
        for l in 0..self.config.shape().num_levels() {
            if alive.is_empty() {
                break;
            }
            let ops: Vec<PlanOp> = alive
                .iter()
                .map(|w| {
                    let i = items[w.idx].addr.block;
                    PlanOp {
                        round: QuorumRound::await_all(
                            self.systems[i].thresholds().write_threshold(l),
                        ),
                        calls: self.write_level_calls(
                            items[w.idx].addr.stripe,
                            i,
                            l,
                            (&w.payload, &w.raw_delta, w.new_check),
                            (w.old_version, w.new_version),
                        ),
                    }
                })
                .collect();
            let outcomes = run_fused(&self.transport, Some(l), ops, &mut report);
            let mut survivors = Vec::with_capacity(alive.len());
            for (mut w, outcome) in alive.into_iter().zip(outcomes) {
                let i = items[w.idx].addr.block;
                let needed = self.systems[i].thresholds().write_threshold(l);
                match crate::rounds::grade_write_level(&outcome, l, needed, &mut w.validated) {
                    Ok(()) => survivors.push(w),
                    Err(e) => results[w.idx] = Some(Err(e)),
                }
            }
            alive = survivors;
        }
        for w in alive {
            results[w.idx] = Some(Ok(WriteOutcome {
                version: w.new_version,
                validated: w.validated,
                report: OpReport::default(),
            }));
        }

        BatchWrites {
            outcomes: crate::rounds::finish_batch(results),
            report,
        }
    }

    /// Folds the version-query replies of a gather round into `matrix`:
    /// parity columns from `Versions` answers, data-node versions from
    /// scalar `Version` answers.
    fn fold_versions_into(&self, matrix: &mut VersionMatrix, outcome: &RoundOutcome) {
        for accepted in &outcome.accepted {
            match &accepted.response {
                Response::Versions(col) => matrix.set_column(accepted.node.0, col.clone()),
                Response::Version(v) => matrix.set_data_version(accepted.node.0, *v),
                _ => {}
            }
        }
    }

    #[inline]
    fn call(&self, node: usize, req: Request) -> Result<Response, NodeError> {
        self.transport.call(NodeId(node), req)
    }

    /// A lone node call, billed to `report` as a round of one.
    fn call_recorded(
        &self,
        node: usize,
        req: Request,
        report: &mut OpReport,
    ) -> Result<Response, NodeError> {
        let result = self.call(node, req);
        report.absorb_call(result.is_ok());
        result
    }

    /// Crate-internal raw node access for the recovery workflows.
    #[inline]
    pub(crate) fn raw_call(&self, node: usize, req: Request) -> Result<Response, NodeError> {
        self.call(node, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    /// (9, 6) stripe on a 4-node trapezoid (a=2, b=1, h=1: levels 1 + 3).
    fn client_9_6() -> (TrapErcClient<LocalTransport>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(9, 6, 2, 1, 1, 1).unwrap();
        let cluster = Cluster::new(9);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        (client, cluster)
    }

    /// (15, 8) stripe on the Fig. 3 trapezoid (a=0, b=4, h=1).
    fn client_15_8() -> (TrapErcClient<LocalTransport>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        (client, cluster)
    }

    fn blocks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| (i * 41 + b * 7) as u8).collect())
            .collect()
    }

    #[test]
    fn create_then_read_every_block_direct() {
        let (client, _cluster) = client_9_6();
        let data = blocks(6, 64);
        client.create_stripe(1, data.clone()).unwrap();
        for (i, expect) in data.iter().enumerate() {
            let out = client.read_block(1, i).unwrap();
            assert_eq!(&out.bytes, expect);
            assert_eq!(out.version, 0);
            assert_eq!(out.path, ReadPath::Direct);
        }
    }

    #[test]
    fn write_then_read_back() {
        let (client, _cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 32)).unwrap();
        let new = vec![0xEE; 32];
        let w = client.write_block(1, 2, &new).unwrap();
        assert_eq!(w.version, 1);
        // All 4 trapezoid members validated (everything is up).
        assert_eq!(w.validated.len(), 4);
        let out = client.read_block(1, 2).unwrap();
        assert_eq!(out.bytes, new);
        assert_eq!(out.version, 1);
    }

    #[test]
    fn read_decodes_when_data_node_dead() {
        let (client, cluster) = client_9_6();
        let data = blocks(6, 48);
        client.create_stripe(1, data.clone()).unwrap();
        let new = vec![0x5A; 48];
        client.write_block(1, 0, &new).unwrap();
        cluster.kill(0);
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, new);
        assert_eq!(out.version, 1);
        match out.path {
            ReadPath::Decoded { ref nodes } => {
                assert_eq!(nodes.len(), 6, "k nodes feed the decode");
                assert!(!nodes.contains(&0), "dead node cannot contribute");
            }
            ReadPath::Direct => panic!("must decode with N_0 dead"),
        }
    }

    #[test]
    fn read_decodes_when_data_node_stale() {
        let (client, cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 16)).unwrap();
        // Kill N_3, write block 3 (level 0 of its trapezoid = {N_3} alone
        // with w_0 = 1 ⇒ the write FAILS at level 0 and leaves no residue.
        cluster.kill(3);
        let err = client.write_block(1, 3, &[1u8; 16]).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::WriteQuorumNotMet { level: 0, .. }
        ));
        cluster.revive(3);

        // For a *stale N_i* we need the trapezoid to allow writes that
        // miss N_i: use the (15, 8) layout where level 0 has 4 members.
        let (client, cluster) = client_15_8();
        client.create_stripe(7, blocks(8, 16)).unwrap();
        cluster.kill(0); // N_0 down during the write
        let new = vec![0xA7; 16];
        let w = client.write_block(7, 0, &new).unwrap();
        assert_eq!(w.version, 1);
        assert!(!w.validated.contains(&0));
        cluster.revive(0); // back, but stale at version 0

        let out = client.read_block(7, 0).unwrap();
        assert_eq!(out.bytes, new, "stale N_0 must not serve the read");
        assert_eq!(out.version, 1);
        assert!(out.decoded());
    }

    #[test]
    fn write_fails_when_level_cannot_validate() {
        let (client, cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 16)).unwrap();
        // Level 1 of every block's trapezoid = parity nodes {6, 7, 8};
        // w_1 = 1. Kill all three: write fails at level 1.
        for j in 6..9 {
            cluster.kill(j);
        }
        let err = client.write_block(1, 1, &[9u8; 16]).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::WriteQuorumNotMet {
                level: 1,
                needed: 1,
                achieved: 0
            }
        );
    }

    #[test]
    fn failed_write_leaves_documented_residue() {
        // Algorithm 1 has no rollback: a write failing at level 1 has
        // already written N_i at level 0. The new version is then served
        // by subsequent reads (quorum-protocol anomaly, see module docs).
        let (client, cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 16)).unwrap();
        for j in 6..9 {
            cluster.kill(j);
        }
        let _ = client.write_block(1, 4, &[0xBB; 16]).unwrap_err();
        for j in 6..9 {
            cluster.revive(j);
        }
        let out = client.read_block(1, 4).unwrap();
        assert_eq!(out.version, 1, "residue of the failed write is visible");
        assert_eq!(out.bytes, vec![0xBB; 16]);
    }

    #[test]
    fn read_fails_without_version_quorum() {
        let (client, cluster) = client_15_8();
        client.create_stripe(1, blocks(8, 16)).unwrap();
        // Block 0 trapezoid: level 0 = {0, 8, 9, 10} (r_0 = 2),
        // level 1 = {11..14} (r_1 = 3). Leave only N_0 and two of level 1.
        for node in [8, 9, 10, 13, 14] {
            cluster.kill(node);
        }
        for node in 1..8 {
            cluster.kill(node);
        }
        let err = client.read_block(1, 0).unwrap_err();
        assert_eq!(err, ProtocolError::VersionCheckFailed);
    }

    #[test]
    fn read_fails_when_too_few_for_decode() {
        let (client, cluster) = client_15_8();
        let data = blocks(8, 16);
        client.create_stripe(1, data).unwrap();
        // N_0 dead; kill all other data nodes too so only 7 parity nodes
        // remain — version check passes, decode needs k = 8.
        for node in 0..8 {
            cluster.kill(node);
        }
        let err = client.read_block(1, 0).unwrap_err();
        assert!(
            matches!(err, ProtocolError::NotEnoughForDecode { needed: 8, found } if found == 7),
            "{err:?}"
        );
    }

    #[test]
    fn sequential_writes_version_monotone() {
        let (client, _cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 16)).unwrap();
        for round in 1..=10u64 {
            let new = vec![round as u8; 16];
            let w = client.write_block(1, 0, &new).unwrap();
            assert_eq!(w.version, round);
            let r = client.read_block(1, 0).unwrap();
            assert_eq!(r.version, round);
            assert_eq!(r.bytes, new);
        }
    }

    #[test]
    fn interleaved_writes_to_different_blocks() {
        let (client, cluster) = client_15_8();
        let mut data = blocks(8, 24);
        client.create_stripe(1, data.clone()).unwrap();
        // Rotate through blocks with occasional failures of parity nodes.
        for round in 0..16u8 {
            let i = (round as usize * 3) % 8;
            if round % 4 == 2 {
                cluster.kill(8 + (round as usize % 7));
            }
            let new: Vec<u8> = (0..24)
                .map(|b| round.wrapping_mul(b as u8 ^ 0x33))
                .collect();
            if client.write_block(1, i, &new).is_ok() {
                data[i] = new;
            }
            if round % 4 == 3 {
                for j in 8..15 {
                    cluster.revive(j);
                }
            }
        }
        for j in 8..15 {
            cluster.revive(j);
        }
        for (i, expect) in data.iter().enumerate() {
            let out = client.read_block(1, i).unwrap();
            assert_eq!(&out.bytes, expect, "block {i}");
        }
    }

    #[test]
    fn stripe_missing_detected() {
        let (client, _cluster) = client_9_6();
        let err = client.read_block(99, 0).unwrap_err();
        assert_eq!(err, ProtocolError::StripeMissing);
    }

    #[test]
    fn create_rejects_bad_input() {
        let (client, cluster) = client_9_6();
        assert_eq!(
            client.create_stripe(1, blocks(5, 16)).unwrap_err(),
            ProtocolError::SizeMismatch
        );
        let mut ragged = blocks(6, 16);
        ragged[3].push(0);
        assert_eq!(
            client.create_stripe(1, ragged).unwrap_err(),
            ProtocolError::SizeMismatch
        );
        cluster.kill(4);
        assert!(matches!(
            client.create_stripe(1, blocks(6, 16)).unwrap_err(),
            ProtocolError::Node(NodeError::Down)
        ));
    }

    #[test]
    fn write_wrong_length_rejected() {
        let (client, _cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 16)).unwrap();
        assert_eq!(
            client.write_block(1, 0, &[0u8; 17]).unwrap_err(),
            ProtocolError::SizeMismatch
        );
    }

    #[test]
    fn write_with_hint_skips_embedded_read() {
        let (client, cluster) = client_15_8();
        let data = blocks(8, 16);
        client.create_stripe(1, data.clone()).unwrap();
        // Make the embedded read impossible for block 0 while keeping the
        // write quorum alive: kill every data node except N_0 — version
        // check still works (trapezoid is N_0 + parity), but suppose the
        // driver knows the old value anyway.
        for t in 1..8 {
            cluster.kill(t);
        }
        let new = vec![0xCD; 16];
        let w = client
            .write_block_with_hint(1, 0, &new, &data[0], 0)
            .unwrap();
        assert_eq!(w.version, 1);
        // Direct read still served by N_0.
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, new);
        assert_eq!(out.path, ReadPath::Direct);
    }

    #[test]
    fn scrub_restores_stale_nodes() {
        let (client, cluster) = client_15_8();
        let data = blocks(8, 16);
        client.create_stripe(1, data).unwrap();
        // Parity node 11 misses two writes, N_0 misses one.
        cluster.kill(11);
        client.write_block(1, 0, &[1u8; 16]).unwrap();
        cluster.kill(0);
        client.write_block(1, 0, &[2u8; 16]).unwrap();
        cluster.revive(0);
        cluster.revive(11);

        // Before the scrub: reads work but need the decode path, and the
        // largest consistent parity group excludes node 11.
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, vec![2u8; 16]);
        assert!(out.decoded());

        let report = client.scrub_stripe(1).unwrap();
        assert_eq!(
            report.refreshed.len(),
            15,
            "all nodes live -> all refreshed"
        );
        assert!(report.salvaged.is_empty(), "nothing was poisoned");

        // After the scrub: N_0 is current again (direct reads), and node
        // 11 accepts deltas once more.
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, vec![2u8; 16]);
        assert_eq!(out.path, ReadPath::Direct);
        let w = client.write_block(1, 0, &[3u8; 16]).unwrap();
        assert!(w.validated.contains(&11), "node 11 takes deltas again");
    }

    /// Reproduction finding: a failed write can *poison* a block
    /// permanently. Interleaved failed writes under different failure
    /// sets leave residue versions visible to version checks but spread
    /// across parity nodes with mutually inconsistent columns, so no k
    /// consistent nodes exist — reads fail forever (even fully healed),
    /// and later writes fail too (their embedded READBLOCK fails). The
    /// paper never analyses failed-write history. The scrub extension
    /// salvages: it rolls the block back to the newest recoverable value
    /// at a version that supersedes the residue.
    #[test]
    fn poisoned_block_is_salvaged_by_scrub() {
        let (client, cluster) = client_15_8();
        let initial = blocks(8, 16);
        client.create_stripe(1, initial.clone()).unwrap();
        // Minimal poisoning sequence (found by proptest shrinking):
        cluster.kill(2);
        cluster.kill(10);
        let _ = client.write_block(1, 2, &[211; 16]).unwrap_err(); // residue on parity 8, 9
        cluster.kill(8);
        let _ = client.write_block(1, 7, &[89; 16]).unwrap_err(); // residue on N_7, parity 9
        cluster.kill(9);
        let _ = client.write_block(1, 5, &[189; 16]).unwrap_err(); // residue on N_5 only

        // Fully healed — yet block 2 is bricked: the version check sees
        // v1, but parity 8 and 9 disagree on other columns and no data
        // copy of v1 exists anywhere.
        for n in 0..15 {
            cluster.revive(n);
        }
        let err = client.read_block(1, 2).unwrap_err();
        assert!(
            matches!(err, ProtocolError::NotEnoughForDecode { .. }),
            "{err:?}"
        );
        // ... and writes to it are bricked too (embedded read fails).
        let err = client.write_block(1, 2, &[1; 16]).unwrap_err();
        assert!(
            matches!(err, ProtocolError::OldValueUnreadable(_)),
            "{err:?}"
        );

        // The scrub salvages block 2 back to its newest recoverable value
        // (the initial content) at a superseding version.
        let report = client.scrub_stripe(1).unwrap();
        assert!(report.salvaged.contains(&2), "{report:?}");
        let out = client.read_block(1, 2).unwrap();
        assert_eq!(
            out.bytes, initial[2],
            "rolled back to the recoverable value"
        );
        assert!(out.version > 1, "residue version superseded, not reused");
        // The block is fully writable again.
        let w = client.write_block(1, 2, &[0x99; 16]).unwrap();
        assert_eq!(w.validated.len(), 8);
        assert_eq!(client.read_block(1, 2).unwrap().bytes, vec![0x99; 16]);
    }

    #[test]
    fn scrub_skips_down_nodes() {
        let (client, cluster) = client_15_8();
        client.create_stripe(1, blocks(8, 16)).unwrap();
        cluster.kill(12);
        let report = client.scrub_stripe(1).unwrap();
        assert_eq!(report.refreshed.len(), 14);
        assert!(!report.refreshed.contains(&12));
    }

    #[test]
    fn batched_ops_fuse_per_level_rounds() {
        let (client, _cluster) = client_15_8();
        client.create_stripe(1, blocks(8, 32)).unwrap();
        client.create_stripe(2, blocks(8, 32)).unwrap();

        // Single-op baseline: a healthy read costs one level round plus
        // two lone N_i calls; a write adds one round per level.
        let single = client.read_block(1, 0).unwrap();
        assert_eq!(single.report.network_rounds(), 3);

        // Batched read across two stripes: one fused level-0 round plus
        // one fused fetch round — flat in m, not 3·m.
        let addrs: Vec<BlockAddr> = (0..8)
            .map(|i| BlockAddr::new(1 + (i as u64 & 1), i))
            .collect();
        let reads = client.read_blocks(&addrs);
        assert!(reads.all_ok());
        assert_eq!(reads.report.network_rounds(), 2);
        assert_eq!(
            reads.report.rounds_at_level(0),
            1,
            "one fused level-0 scatter"
        );
        assert_eq!(reads.report.rounds[0].ops, 8, "all blocks share it");

        // Batched write: the fused embedded read + one fused round per
        // trapezoid level (h + 1 = 2).
        let payloads: Vec<Vec<u8>> = (0..8).map(|i| vec![0xB0 | i as u8; 32]).collect();
        let items: Vec<BatchWrite> = addrs
            .iter()
            .zip(&payloads)
            .map(|(&addr, p)| BatchWrite::new(addr, p))
            .collect();
        let batch = client.write_blocks(&items);
        assert!(batch.all_ok());
        assert_eq!(batch.report.network_rounds(), 4);
        assert_eq!(
            batch.report.rounds_at_level(0),
            2,
            "read check + write level 0"
        );
        assert_eq!(batch.report.rounds_at_level(1), 1, "write level 1");
        // Message volume still scales with m — fusion amortises rounds,
        // not payloads: every trapezoid member of every block was written.
        assert!(batch.report.messages() >= 8 * 8);

        // The batch is real: single-op reads observe its effects.
        for (addr, payload) in addrs.iter().zip(&payloads) {
            let out = client.read_block(addr.stripe, addr.block).unwrap();
            assert_eq!(&out.bytes, payload);
            assert_eq!(out.version, 1);
        }
    }

    #[test]
    fn batched_writes_grade_per_block() {
        let (client, cluster) = client_15_8();
        client.create_stripe(1, blocks(8, 16)).unwrap();
        // Block i's level 0 is {N_i, 8, 9, 10} with w_0 = 3. Killing N_5
        // and parity 8 leaves block 5 with only 2 reachable level-0
        // members (fails) while every other block still has exactly 3
        // (succeeds) — one fused scatter, divergent per-item grades.
        cluster.kill(5);
        cluster.kill(8);
        let payloads: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 16]).collect();
        let items: Vec<BatchWrite> = (0..8)
            .map(|i| BatchWrite::new(BlockAddr::new(1, i), payloads[i].as_slice()))
            .collect();
        let batch = client.write_blocks(&items);
        // Every block except 5 commits; block 5 fails its level-0 grade
        // (3 of {5, 8, 9, 10} needed, N_5 down) — per-item results, one
        // fused scatter.
        for (i, out) in batch.outcomes.iter().enumerate() {
            if i == 5 {
                assert!(
                    matches!(out, Err(ProtocolError::WriteQuorumNotMet { level: 0, .. })),
                    "{out:?}"
                );
            } else {
                assert_eq!(out.as_ref().unwrap().version, 1, "block {i}");
            }
        }

        // Duplicate addresses are rejected per-item.
        let dup = client.write_blocks(&[
            BatchWrite::new(BlockAddr::new(1, 0), &payloads[0]),
            BatchWrite::new(BlockAddr::new(1, 0), &payloads[1]),
        ]);
        assert!(dup.outcomes[0].is_ok());
        assert!(matches!(
            dup.outcomes[1],
            Err(ProtocolError::Misconfigured(_))
        ));
    }

    #[test]
    fn io_accounting_shows_delta_updates() {
        let (client, cluster) = client_9_6();
        client.create_stripe(1, blocks(6, 1024)).unwrap();
        let before = cluster.io_totals();
        client.write_block(1, 0, &vec![1u8; 1024]).unwrap();
        let delta = cluster.io_totals().since(&before);
        // One data write + 3 parity folds; the embedded read costs
        // version queries + one data read.
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.parity_adds, 3);
        assert!(delta.reads >= 1);
    }

    // -----------------------------------------------------------------
    // Integrity mode: corrupt shards are detected, routed around,
    // attributed and repaired — never silently decoded into garbage.
    // -----------------------------------------------------------------

    /// A (9, 6) client on nodes that do *not* self-verify reads: every
    /// corruption must be caught by the client-side cross-checksum.
    fn unverified_client_9_6() -> (TrapErcClient<LocalTransport>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(9, 6, 2, 1, 1, 1).unwrap();
        let cluster = Cluster::with_node_builders(9, |_, b| b.verify_reads(false));
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        (client, cluster)
    }

    /// Flips one bit of node `node`'s stored copy of object `id` behind
    /// the node's back, keeping every piece of metadata (version, the
    /// stamped self-check, the cross-checksum vector) intact — the shape
    /// of a latent media corruption the node has not noticed yet.
    fn tamper(cluster: &Cluster, node: usize, id: u64) {
        use tq_cluster::storage::StoredBlock;
        let backend = cluster.node(node).backend();
        let block = backend.get(id).unwrap().expect("block stored");
        let tampered = match block {
            StoredBlock::Data {
                version,
                bytes,
                check,
            } => {
                let mut b = bytes.to_vec();
                b[0] ^= 0x40;
                StoredBlock::Data {
                    version,
                    bytes: Bytes::from(b),
                    check,
                }
            }
            StoredBlock::Parity {
                versions,
                bytes,
                check,
                checks,
            } => {
                let mut b = bytes.to_vec();
                b[0] ^= 0x40;
                StoredBlock::Parity {
                    versions,
                    bytes: Bytes::from(b),
                    check,
                    checks,
                }
            }
        };
        backend.put(id, tampered).unwrap();
    }

    #[test]
    fn read_routes_around_a_self_detected_corrupt_node() {
        // Default nodes verify reads: N_0 itself refuses to serve its
        // tampered copy, and the read decodes from the clean shards.
        let (client, cluster) = client_9_6();
        let data = blocks(6, 64);
        client.create_stripe(1, data.clone()).unwrap();
        tamper(&cluster, 0, 1);
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, data[0]);
        match out.path {
            ReadPath::Decoded { ref nodes } => {
                assert!(!nodes.contains(&0), "corrupt node cannot contribute")
            }
            ReadPath::Direct => panic!("tampered N_0 must not serve directly"),
        }
    }

    #[test]
    fn read_detects_corruption_the_node_itself_missed() {
        // Verify-off nodes happily serve tampered bytes with the stale
        // self-check attached; the client's checksum comparison is the
        // only line of defense — and it must hold on both a data shard
        // and a parity shard feeding a decode.
        let (client, cluster) = unverified_client_9_6();
        let data = blocks(6, 64);
        client.create_stripe(1, data.clone()).unwrap();
        tamper(&cluster, 0, 1);
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, data[0], "decoded bytes must match the original");
        assert!(matches!(out.path, ReadPath::Decoded { .. }));

        // Now also rot a parity shard: the decode for block 0 must skip
        // it (cross-checksum vector mismatch) and still come back clean.
        tamper(&cluster, 6, 1);
        let out = client.read_block(1, 0).unwrap();
        assert_eq!(out.bytes, data[0]);
        match out.path {
            ReadPath::Decoded { ref nodes } => {
                assert!(!nodes.contains(&6), "corrupt parity cannot contribute")
            }
            ReadPath::Direct => unreachable!(),
        }
    }

    #[test]
    fn too_few_clean_shards_is_a_typed_integrity_error() {
        let (client, cluster) = unverified_client_9_6();
        client.create_stripe(1, blocks(6, 32)).unwrap();
        // Corrupt N_0 and every parity node: block 0 has only the 5
        // other data shards left clean — one short of k = 6. The read
        // must refuse with the corruption verdict, naming the liars,
        // rather than decode garbage or claim the nodes were merely
        // missing.
        for node in [0, 6, 7, 8] {
            tamper(&cluster, node, 1);
        }
        let err = client.read_block(1, 0).unwrap_err();
        match err {
            ProtocolError::Integrity {
                needed,
                clean,
                corrupt,
            } => {
                assert_eq!(needed, 6);
                assert_eq!(clean, 5);
                for node in [0, 6, 7, 8] {
                    assert!(corrupt.contains(&node), "{node} missing from {corrupt:?}");
                }
            }
            other => panic!("expected Integrity, got {other:?}"),
        }
        // Other blocks still read directly — corruption of one shard's
        // worth of nodes is not an availability event for the rest.
        assert!(client.read_block(1, 3).is_ok());
    }

    #[test]
    fn scrub_attributes_and_repairs_corrupt_nodes() {
        // Both node postures: self-verifying nodes surface
        // `NodeError::Corrupt`, verify-off nodes are caught by the
        // client's cross-checksum — the scrub must attribute and heal
        // either way.
        for verified in [true, false] {
            let (client, cluster) = if verified {
                client_9_6()
            } else {
                unverified_client_9_6()
            };
            let data = blocks(6, 48);
            client.create_stripe(1, data.clone()).unwrap();
            tamper(&cluster, 2, 1);
            tamper(&cluster, 7, 1);

            let report = client.scrub_stripe(1).unwrap();
            assert_eq!(
                report.corrupt,
                vec![2, 7],
                "scrub must name the nodes that served corrupt bytes (verified={verified})"
            );
            assert!(report.salvaged.is_empty(), "no residue to supersede");
            assert_eq!(report.refreshed.len(), 9, "push re-stamps every node");

            // The push healed the rot in place: both nodes' stored
            // copies self-check again and the data reads back directly.
            for node in [2, 7] {
                let stored = cluster.node(node).backend().get(1).unwrap().unwrap();
                assert!(stored.self_check_ok(), "node {node} still rotten");
            }
            let out = client.read_block(1, 2).unwrap();
            assert_eq!(out.bytes, data[2]);
            assert_eq!(out.path, ReadPath::Direct);
            assert!(client.scrub_stripe(1).unwrap().corrupt.is_empty());
        }
    }

    #[test]
    fn delta_writes_keep_parity_cross_checksums_live() {
        // A chain of delta writes must leave every parity node holding a
        // cross-checksum vector that still verifies its folded bytes —
        // otherwise detection would silently degrade after the first
        // write. Verified by tampering *after* the writes and expecting
        // attribution.
        let (client, cluster) = unverified_client_9_6();
        client.create_stripe(1, blocks(6, 32)).unwrap();
        for round in 0..3u8 {
            client.write_block(1, 4, &[round; 32]).unwrap();
            client.write_block(1, 1, &[round ^ 0x5A; 32]).unwrap();
        }
        assert!(client.scrub_stripe(1).unwrap().corrupt.is_empty());
        tamper(&cluster, 8, 1);
        let report = client.scrub_stripe(1).unwrap();
        assert_eq!(report.corrupt, vec![8]);
        assert!(client.scrub_stripe(1).unwrap().corrupt.is_empty());
    }
}
