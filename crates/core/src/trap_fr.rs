//! TRAP-FR: the classical trapezoid protocol over full replication.
//!
//! §IV of the paper compares TRAP-ERC against "a full replication storage
//! system ensuring that each data block is stored on n − k + 1 nodes" —
//! i.e. the original Suzuki–Ohara trapezoid with the *same* shape and
//! thresholds, every node holding a complete copy. This client implements
//! that baseline: node `p` of the transport is trapezoid position `p`
//! (level-major).
//!
//! Reads differ from TRAP-ERC in exactly the way §II describes: "on full
//! replication, any node giving the adequate latest version of a block
//! can be used to retrieve the corresponding data" — no decode path, no
//! dependence on other blocks.

use bytes::Bytes;
use tq_cluster::{NodeError, NodeId, PlanOp, QuorumRound, Request, Response, Transport};
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};

use crate::errors::ProtocolError;
use crate::rounds::{run_fused, run_recorded};
use crate::store::{BatchReads, BatchWrites, OpReport};
use crate::trap_erc::{ReadOutcome, ReadPath, ScrubReport, WriteOutcome};

/// Full-replication trapezoid client for one replicated object universe.
#[derive(Debug)]
pub struct TrapFrClient<T: Transport> {
    shape: TrapezoidShape,
    thresholds: WriteThresholds,
    /// The (n, k) stripe this deployment substitutes for — eq. 5 sizes
    /// the trapezoid as `n − k + 1`; kept for [`crate::store::StoreInfo`].
    stripe: (usize, usize),
    transport: T,
}

impl<T: Transport> TrapFrClient<T> {
    /// Binds a trapezoid to a transport; the transport must expose at
    /// least `shape.node_count()` nodes.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(
        shape: TrapezoidShape,
        thresholds: WriteThresholds,
        transport: T,
    ) -> Result<Self, ProtocolError> {
        let n = shape.node_count();
        Self::with_stripe(shape, thresholds, n, 1, transport)
    }

    /// [`TrapFrClient::new`] with the (n, k) stripe identity recorded:
    /// the paper's §IV baseline stores each block on `n − k + 1` full
    /// replicas, so the trapezoid must organise exactly that many nodes.
    ///
    /// # Errors
    /// [`ProtocolError::Shape`] if `shape.node_count() ≠ n − k + 1`;
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn with_stripe(
        shape: TrapezoidShape,
        thresholds: WriteThresholds,
        n: usize,
        k: usize,
        transport: T,
    ) -> Result<Self, ProtocolError> {
        let expected =
            (n + 1)
                .checked_sub(k)
                .filter(|&e| e >= 1)
                .ok_or(ProtocolError::Misconfigured(
                    "stripe k exceeds n (no trapezoid of n - k + 1 nodes exists)",
                ))?;
        if shape.node_count() != expected {
            return Err(ProtocolError::Shape(
                tq_quorum::trapezoid::ShapeError::StripeMismatch {
                    node_count: shape.node_count(),
                    expected,
                },
            ));
        }
        if transport.node_count() < shape.node_count() {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        Ok(TrapFrClient {
            shape,
            thresholds,
            stripe: (n, k),
            transport,
        })
    }

    /// The trapezoid shape.
    pub fn shape(&self) -> &TrapezoidShape {
        &self.shape
    }

    /// The thresholds.
    pub fn thresholds(&self) -> &WriteThresholds {
        &self.thresholds
    }

    /// The stripe width n this deployment substitutes for.
    pub fn stripe_n(&self) -> usize {
        self.stripe.0
    }

    /// The stripe data-block count k this deployment substitutes for.
    pub fn stripe_k(&self) -> usize {
        self.stripe.1
    }

    /// Installs the object on every replica at version 0 in one fan-out
    /// round (provisioning; requires all nodes live).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-positioned failing
    /// replica's error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<OpReport, ProtocolError> {
        let mut report = OpReport::default();
        crate::rounds::provision(
            &self.transport,
            self.shape.node_count(),
            id,
            bytes,
            &mut report,
        )?;
        Ok(report)
    }

    /// Provisions many objects in one fused fan-out round.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the first failing replica's error.
    pub fn create_many(&self, items: &[(u64, &[u8])]) -> Result<OpReport, ProtocolError> {
        let mut report = OpReport::default();
        crate::rounds::provision_many(
            &self.transport,
            self.shape.node_count(),
            items,
            &mut report,
        )?;
        Ok(report)
    }

    /// Reads the object: per level, poll `r_l` members' versions; once a
    /// level completes, fetch the bytes from any polled replica holding
    /// the latest version.
    ///
    /// # Errors
    /// [`ProtocolError::VersionCheckFailed`] if no level completes its
    /// check; [`ProtocolError::StripeMissing`] if nodes answer but none
    /// stores the object.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let mut report = OpReport::default();
        let result = self.read_recorded(id, &mut report);
        result.map(|mut out| {
            out.report = report;
            out
        })
    }

    fn read_recorded(&self, id: u64, report: &mut OpReport) -> Result<ReadOutcome, ProtocolError> {
        let mut saw_not_found = false;
        let mut saw_success = false;
        for l in 0..self.shape.num_levels() {
            let needed = self.thresholds.read_threshold(&self.shape, l);
            // One first-quorum round per level: complete on the r_l-th
            // version answer, abandon the stragglers.
            let calls: Vec<(NodeId, Request)> = self
                .shape
                .level_range(l)
                .map(|pos| (NodeId(pos), Request::VersionData { id }))
                .collect();
            let outcome = run_recorded(
                &self.transport,
                QuorumRound::first_quorum(needed),
                Some(l),
                calls,
                report,
            );
            saw_not_found |= outcome.saw_error(|e| matches!(e, NodeError::NotFound));
            saw_success |= !outcome.accepted.is_empty();
            let responders = crate::rounds::version_responders(&outcome);
            if outcome.quorum_met() {
                let latest = responders.iter().map(|&(_, v)| v).max().expect("non-empty");
                if let Some(out) = self.fetch_latest(id, latest, &responders, report) {
                    return Ok(out);
                }
                // Every latest holder died between the two calls — treat
                // the level as failed and move on.
            }
        }
        if saw_not_found && !saw_success {
            return Err(ProtocolError::StripeMissing);
        }
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Serves the bytes from some polled replica holding `latest` ("any
    /// node giving the adequate latest version ... can be used").
    fn fetch_latest(
        &self,
        id: u64,
        latest: u64,
        responders: &[(usize, u64)],
        report: &mut OpReport,
    ) -> Option<ReadOutcome> {
        for &(pos, v) in responders {
            if v != latest {
                continue;
            }
            let result = self.call(pos, Request::ReadData { id });
            report.absorb_call(result.is_ok());
            if let Ok(Response::Data { bytes, version, .. }) = result {
                if version >= latest {
                    return Some(ReadOutcome {
                        bytes: bytes.to_vec(),
                        version,
                        path: ReadPath::Direct,
                        report: OpReport::default(),
                    });
                }
            }
        }
        None
    }

    /// Writes the object: discovers the current version via the read
    /// path's version check, then installs `version + 1` on at least
    /// `w_l` members of *every* level.
    ///
    /// The per-replica `WriteData` is monotone (compare-and-advance on
    /// version), so this write is safe under at-least-once delivery: a
    /// duplicated or cross-round-stale copy of any level's install acks
    /// idempotently on a replica that has since moved on, instead of
    /// rolling it back.
    ///
    /// # Errors
    /// [`ProtocolError::OldValueUnreadable`] if the version discovery
    /// fails; [`ProtocolError::WriteQuorumNotMet`] if a level validates
    /// fewer than `w_l` replicas.
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        let mut out = self.write_with_version(id, new, old.version)?;
        let mut report = old.report;
        report.merge_from(std::mem::take(&mut out.report));
        out.report = report;
        Ok(out)
    }

    /// The write fan-out with a caller-supplied current version — the
    /// eq. 8 predicate in executable form (used by the Monte-Carlo
    /// validation, mirroring
    /// [`crate::TrapErcClient::write_block_with_hint`]).
    ///
    /// # Errors
    /// [`ProtocolError::WriteQuorumNotMet`] as above.
    pub fn write_with_version(
        &self,
        id: u64,
        new: &[u8],
        old_version: u64,
    ) -> Result<WriteOutcome, ProtocolError> {
        let new_version = old_version + 1;
        // One shared allocation; per-replica clones are O(1) Arc bumps.
        let payload = Bytes::copy_from_slice(new);
        let mut validated = Vec::new();
        let mut report = OpReport::default();
        for l in 0..self.shape.num_levels() {
            let needed = self.thresholds.write_threshold(l);
            // Await-all: every replica of the level is written; w_l acks
            // grade the level.
            let calls = self.write_level_calls(id, l, &payload, new_version);
            crate::rounds::graded_write_level(
                &self.transport,
                l,
                needed,
                calls,
                &mut validated,
                &mut report,
            )?;
        }
        Ok(WriteOutcome {
            version: new_version,
            validated,
            report,
        })
    }

    /// Builds level `l`'s write scatter: `WriteData` to every member.
    fn write_level_calls(
        &self,
        id: u64,
        l: usize,
        payload: &Bytes,
        version: u64,
    ) -> Vec<(NodeId, Request)> {
        self.shape
            .level_range(l)
            .map(|pos| {
                (
                    NodeId(pos),
                    Request::WriteData {
                        id,
                        bytes: payload.clone(),
                        version,
                    },
                )
            })
            .collect()
    }

    /// Batched read: fused per-level version rounds for every object,
    /// then one fused fetch round serving each object from a replica
    /// that answered with the latest version.
    pub fn read_many(&self, ids: &[u64]) -> BatchReads {
        let mut report = OpReport::default();
        struct ItemState {
            latest: Option<u64>,
            holders: Vec<usize>,
            saw_not_found: bool,
            saw_success: bool,
            done: Option<Result<ReadOutcome, ProtocolError>>,
        }
        let mut states: Vec<ItemState> = ids
            .iter()
            .map(|_| ItemState {
                latest: None,
                holders: Vec::new(),
                saw_not_found: false,
                saw_success: false,
                done: None,
            })
            .collect();

        for l in 0..self.shape.num_levels() {
            let pending: Vec<usize> = (0..states.len())
                .filter(|&idx| states[idx].latest.is_none())
                .collect();
            if pending.is_empty() {
                break;
            }
            let needed = self.thresholds.read_threshold(&self.shape, l);
            let ops: Vec<PlanOp> = pending
                .iter()
                .map(|&idx| PlanOp {
                    round: QuorumRound::first_quorum(needed),
                    calls: self
                        .shape
                        .level_range(l)
                        .map(|pos| (NodeId(pos), Request::VersionData { id: ids[idx] }))
                        .collect(),
                })
                .collect();
            let outcomes = run_fused(&self.transport, Some(l), ops, &mut report);
            for (&idx, outcome) in pending.iter().zip(&outcomes) {
                let st = &mut states[idx];
                st.saw_not_found |= outcome.saw_error(|e| matches!(e, NodeError::NotFound));
                st.saw_success |= !outcome.accepted.is_empty();
                if outcome.quorum_met() {
                    let responders = crate::rounds::version_responders(outcome);
                    let latest = responders.iter().map(|&(_, v)| v).max().expect("non-empty");
                    st.latest = Some(latest);
                    st.holders = responders
                        .iter()
                        .filter(|&&(_, v)| v == latest)
                        .map(|&(pos, _)| pos)
                        .collect();
                }
            }
        }
        for st in &mut states {
            if st.latest.is_none() {
                st.done = Some(Err(if st.saw_not_found && !st.saw_success {
                    ProtocolError::StripeMissing
                } else {
                    ProtocolError::VersionCheckFailed
                }));
            }
        }

        // One fused fetch round: the first known holder of each object.
        let fetch: Vec<usize> = (0..states.len())
            .filter(|&idx| states[idx].done.is_none())
            .collect();
        if !fetch.is_empty() {
            let ops: Vec<PlanOp> = fetch
                .iter()
                .map(|&idx| PlanOp {
                    round: QuorumRound::await_all(0),
                    calls: vec![(
                        NodeId(states[idx].holders[0]),
                        Request::ReadData { id: ids[idx] },
                    )],
                })
                .collect();
            let outcomes = run_fused(&self.transport, None, ops, &mut report);
            for (&idx, outcome) in fetch.iter().zip(&outcomes) {
                let st = &mut states[idx];
                let latest = st.latest.expect("fetch items have a version");
                if let Some(accepted) = outcome.accepted.first() {
                    if let Response::Data { bytes, version, .. } = &accepted.response {
                        if *version >= latest {
                            st.done = Some(Ok(ReadOutcome {
                                bytes: bytes.to_vec(),
                                version: *version,
                                path: ReadPath::Direct,
                                report: OpReport::default(),
                            }));
                        }
                    }
                }
            }
        }
        // Fallback for objects whose first holder died between the two
        // rounds: walk the remaining holders, then (matching the
        // single-op semantics, which treat a fetch-less level as failed
        // and move on to the next) rerun the full per-object read.
        for (idx, st) in states.iter_mut().enumerate() {
            if st.done.is_none() {
                let latest = st.latest.expect("resolved above otherwise");
                let holders: Vec<(usize, u64)> =
                    st.holders.iter().map(|&pos| (pos, latest)).collect();
                st.done = Some(
                    match self.fetch_latest(ids[idx], latest, &holders[1..], &mut report) {
                        Some(out) => Ok(out),
                        None => self.read_recorded(ids[idx], &mut report),
                    },
                );
            }
        }
        BatchReads {
            outcomes: states
                .into_iter()
                .map(|st| st.done.expect("every item resolved"))
                .collect(),
            report,
        }
    }

    /// Batched write: one fused version-discovery pass, then one fused
    /// `WriteData` scatter per trapezoid level for every object.
    pub fn write_many(&self, items: &[(u64, &[u8])]) -> BatchWrites {
        let mut results: Vec<Option<Result<WriteOutcome, ProtocolError>>> = vec![None; items.len()];
        crate::rounds::flag_duplicates(items.iter().map(|&(id, _)| id), &mut results);
        let read_idx: Vec<usize> = (0..items.len())
            .filter(|&idx| results[idx].is_none())
            .collect();
        let ids: Vec<u64> = read_idx.iter().map(|&idx| items[idx].0).collect();
        let reads = self.read_many(&ids);
        let mut report = reads.report;

        struct Alive {
            idx: usize,
            payload: Bytes,
            new_version: u64,
            validated: Vec<usize>,
        }
        let mut alive: Vec<Alive> = Vec::with_capacity(read_idx.len());
        for (&idx, old) in read_idx.iter().zip(reads.outcomes) {
            match old {
                Ok(old) => alive.push(Alive {
                    idx,
                    payload: Bytes::copy_from_slice(items[idx].1),
                    new_version: old.version + 1,
                    validated: Vec::new(),
                }),
                Err(e) => {
                    results[idx] = Some(Err(ProtocolError::OldValueUnreadable(Box::new(e))));
                }
            }
        }

        for l in 0..self.shape.num_levels() {
            if alive.is_empty() {
                break;
            }
            let needed = self.thresholds.write_threshold(l);
            let ops: Vec<PlanOp> = alive
                .iter()
                .map(|w| PlanOp {
                    round: QuorumRound::await_all(needed),
                    calls: self.write_level_calls(items[w.idx].0, l, &w.payload, w.new_version),
                })
                .collect();
            let outcomes = run_fused(&self.transport, Some(l), ops, &mut report);
            let mut survivors = Vec::with_capacity(alive.len());
            for (mut w, outcome) in alive.into_iter().zip(outcomes) {
                match crate::rounds::grade_write_level(&outcome, l, needed, &mut w.validated) {
                    Ok(()) => survivors.push(w),
                    Err(e) => results[w.idx] = Some(Err(e)),
                }
            }
            alive = survivors;
        }
        for w in alive {
            results[w.idx] = Some(Ok(WriteOutcome {
                version: w.new_version,
                validated: w.validated,
                report: OpReport::default(),
            }));
        }
        BatchWrites {
            outcomes: crate::rounds::finish_batch(results),
            report,
        }
    }

    /// Anti-entropy for the store facade: reads every object of the
    /// stripe's contiguous block prefix and pushes the latest state back
    /// to all replicas, refreshing stale ones. Must run quiesced.
    ///
    /// # Errors
    /// Propagates objects whose current state cannot be read back.
    pub(crate) fn repair_stripe_objects(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        crate::baselines::repair_contiguous_objects(
            &self.transport,
            self.shape.node_count(),
            stripe,
            |id, report| self.read_recorded(id, report),
        )
    }

    #[inline]
    fn call(&self, pos: usize, req: Request) -> Result<Response, NodeError> {
        self.transport.call(NodeId(pos), req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    /// Fig. 1 trapezoid: 15 replicas in levels of 3, 5, 7.
    fn client() -> (TrapFrClient<LocalTransport>, Cluster) {
        let shape = TrapezoidShape::new(2, 3, 2).unwrap();
        let th = WriteThresholds::paper_default(&shape, 2).unwrap();
        let cluster = Cluster::new(15);
        let c = TrapFrClient::new(shape, th, LocalTransport::new(cluster.clone())).unwrap();
        (c, cluster)
    }

    #[test]
    fn create_write_read_cycle() {
        let (c, _cluster) = client();
        c.create(1, b"genesis").unwrap();
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"genesis");
        assert_eq!(out.version, 0);
        let w = c.write(1, b"updated").unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.validated.len(), 15, "all replicas live");
        assert_eq!(c.read(1).unwrap().bytes, b"updated");
    }

    #[test]
    fn read_survives_heavy_failures() {
        let (c, cluster) = client();
        c.create(1, b"payload").unwrap();
        c.write(1, b"v1-data").unwrap();
        // Kill levels 0 and 1 entirely; level 2 (positions 8..15) has
        // r_2 = 6 — keep 6 alive.
        for pos in 0..9 {
            cluster.kill(pos);
        }
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"v1-data");
        assert_eq!(out.version, 1);
    }

    #[test]
    fn stale_replicas_never_served() {
        let (c, cluster) = client();
        c.create(1, b"aaaa").unwrap();
        // Node 2 (level 0) misses the write.
        cluster.kill(2);
        c.write(1, b"bbbb").unwrap();
        cluster.revive(2);
        // Even though node 2 is polled first-ish in level 0, the check
        // must surface version 1 and serve "bbbb".
        for _ in 0..4 {
            let out = c.read(1).unwrap();
            assert_eq!(out.bytes, b"bbbb");
            assert_eq!(out.version, 1);
        }
    }

    #[test]
    fn write_fails_when_a_level_lacks_quorum() {
        let (c, cluster) = client();
        c.create(1, b"zz").unwrap();
        // Level 1 = positions 3..8, w_1 = 2: leave only one alive.
        for pos in 4..8 {
            cluster.kill(pos);
        }
        let err = c.write(1, b"yy").unwrap_err();
        assert_eq!(
            err,
            ProtocolError::WriteQuorumNotMet {
                level: 1,
                needed: 2,
                achieved: 1
            }
        );
    }

    #[test]
    fn fr_version_discovery_never_blocks_a_feasible_write() {
        // Structural theorem: w_0 = ⌊b/2⌋ + 1 ≥ r_0 = s_0 − w_0 + 1, so
        // any failure pattern admitting a level-0 write quorum also
        // completes the level-0 version check — for TRAP-FR the embedded
        // read of Algorithm 1 can never be the reason a write fails.
        // (For TRAP-ERC this is false: the read additionally needs N_i or
        // a decode, which is what tq-sim quantifies against eq. 9.)
        let (c, cluster) = client();
        c.create(1, b"zz").unwrap();
        let mut rng = 0x12345678u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng
        };
        let mut ground_version = 0u64;
        for _ in 0..200 {
            let mask = next();
            let up: Vec<bool> = (0..15).map(|i| mask >> i & 1 == 1).collect();
            cluster.apply_availability(&up);
            let hinted = c.write_with_version(1, b"yy", ground_version + 1000);
            // Reset versions drift: hinted used a sandbox version bump;
            // track actual success for the embedded-read variant.
            match c.write(1, b"yy") {
                Ok(w) => ground_version = w.version,
                Err(ProtocolError::OldValueUnreadable(_)) => {
                    // Version discovery failed ⇒ fewer than r_0 ≤ w_0 live
                    // at level 0 ⇒ the write fan-out must be infeasible
                    // too. A pattern where only the read fails would
                    // break the theorem.
                    assert!(
                        hinted.is_err(),
                        "embedded read failed on a write-feasible pattern: {up:?}"
                    );
                }
                Err(ProtocolError::WriteQuorumNotMet { .. }) => {
                    assert!(
                        hinted.is_err(),
                        "hinted write succeeded where fan-out failed: {up:?}"
                    );
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn missing_object_reported() {
        let (c, _cluster) = client();
        assert_eq!(c.read(77).unwrap_err(), ProtocolError::StripeMissing);
    }

    #[test]
    fn rejects_small_transport() {
        let shape = TrapezoidShape::new(2, 3, 2).unwrap();
        let th = WriteThresholds::paper_default(&shape, 2).unwrap();
        let err = TrapFrClient::new(shape, th, LocalTransport::new(Cluster::new(3))).unwrap_err();
        assert!(matches!(err, ProtocolError::Node(_)));
    }
}
