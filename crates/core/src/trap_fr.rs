//! TRAP-FR: the classical trapezoid protocol over full replication.
//!
//! §IV of the paper compares TRAP-ERC against "a full replication storage
//! system ensuring that each data block is stored on n − k + 1 nodes" —
//! i.e. the original Suzuki–Ohara trapezoid with the *same* shape and
//! thresholds, every node holding a complete copy. This client implements
//! that baseline: node `p` of the transport is trapezoid position `p`
//! (level-major).
//!
//! Reads differ from TRAP-ERC in exactly the way §II describes: "on full
//! replication, any node giving the adequate latest version of a block
//! can be used to retrieve the corresponding data" — no decode path, no
//! dependence on other blocks.

use bytes::Bytes;
use tq_cluster::{NodeError, NodeId, QuorumRound, Request, Response, Transport};
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};

use crate::errors::ProtocolError;
use crate::trap_erc::{ReadOutcome, ReadPath, WriteOutcome};

/// Full-replication trapezoid client for one replicated object universe.
#[derive(Debug)]
pub struct TrapFrClient<T: Transport> {
    shape: TrapezoidShape,
    thresholds: WriteThresholds,
    transport: T,
}

impl<T: Transport> TrapFrClient<T> {
    /// Binds a trapezoid to a transport; the transport must expose at
    /// least `shape.node_count()` nodes.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(
        shape: TrapezoidShape,
        thresholds: WriteThresholds,
        transport: T,
    ) -> Result<Self, ProtocolError> {
        if transport.node_count() < shape.node_count() {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        Ok(TrapFrClient {
            shape,
            thresholds,
            transport,
        })
    }

    /// The trapezoid shape.
    pub fn shape(&self) -> &TrapezoidShape {
        &self.shape
    }

    /// The thresholds.
    pub fn thresholds(&self) -> &WriteThresholds {
        &self.thresholds
    }

    /// Installs the object on every replica at version 0 in one fan-out
    /// round (provisioning; requires all nodes live).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-positioned failing
    /// replica's error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<(), ProtocolError> {
        crate::rounds::provision(&self.transport, self.shape.node_count(), id, bytes)
    }

    /// Reads the object: per level, poll `r_l` members' versions; once a
    /// level completes, fetch the bytes from any polled replica holding
    /// the latest version.
    ///
    /// # Errors
    /// [`ProtocolError::VersionCheckFailed`] if no level completes its
    /// check; [`ProtocolError::StripeMissing`] if nodes answer but none
    /// stores the object.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let mut saw_not_found = false;
        let mut saw_success = false;
        for l in 0..self.shape.num_levels() {
            let needed = self.thresholds.read_threshold(&self.shape, l);
            // One first-quorum round per level: complete on the r_l-th
            // version answer, abandon the stragglers.
            let calls: Vec<(NodeId, Request)> = self
                .shape
                .level_range(l)
                .map(|pos| (NodeId(pos), Request::VersionData { id }))
                .collect();
            let outcome = QuorumRound::first_quorum(needed).run(&self.transport, calls);
            saw_not_found |= outcome.saw_error(|e| matches!(e, NodeError::NotFound));
            saw_success |= !outcome.accepted.is_empty();
            let responders = crate::rounds::version_responders(&outcome);
            if outcome.quorum_met() {
                let latest = responders.iter().map(|&(_, v)| v).max().expect("non-empty");
                // Any replica at the latest version serves the read;
                // prefer the ones we already know are live.
                for &(pos, v) in &responders {
                    if v != latest {
                        continue;
                    }
                    if let Ok(Response::Data { bytes, version }) =
                        self.call(pos, Request::ReadData { id })
                    {
                        if version >= latest {
                            return Ok(ReadOutcome {
                                bytes: bytes.to_vec(),
                                version,
                                path: ReadPath::Direct,
                            });
                        }
                    }
                }
                // Every latest holder died between the two calls — treat
                // the level as failed and move on.
            }
        }
        if saw_not_found && !saw_success {
            return Err(ProtocolError::StripeMissing);
        }
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Writes the object: discovers the current version via the read
    /// path's version check, then installs `version + 1` on at least
    /// `w_l` members of *every* level.
    ///
    /// # Errors
    /// [`ProtocolError::OldValueUnreadable`] if the version discovery
    /// fails; [`ProtocolError::WriteQuorumNotMet`] if a level validates
    /// fewer than `w_l` replicas.
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        self.write_with_version(id, new, old.version)
    }

    /// The write fan-out with a caller-supplied current version — the
    /// eq. 8 predicate in executable form (used by the Monte-Carlo
    /// validation, mirroring
    /// [`crate::TrapErcClient::write_block_with_hint`]).
    ///
    /// # Errors
    /// [`ProtocolError::WriteQuorumNotMet`] as above.
    pub fn write_with_version(
        &self,
        id: u64,
        new: &[u8],
        old_version: u64,
    ) -> Result<WriteOutcome, ProtocolError> {
        let new_version = old_version + 1;
        // One shared allocation; per-replica clones are O(1) Arc bumps.
        let payload = Bytes::copy_from_slice(new);
        let mut validated = Vec::new();
        for l in 0..self.shape.num_levels() {
            let needed = self.thresholds.write_threshold(l);
            // Await-all: every replica of the level is written; w_l acks
            // grade the level.
            let calls: Vec<(NodeId, Request)> = self
                .shape
                .level_range(l)
                .map(|pos| {
                    (
                        NodeId(pos),
                        Request::WriteData {
                            id,
                            bytes: payload.clone(),
                            version: new_version,
                        },
                    )
                })
                .collect();
            crate::rounds::graded_write_level(&self.transport, l, needed, calls, &mut validated)?;
        }
        Ok(WriteOutcome {
            version: new_version,
            validated,
        })
    }

    #[inline]
    fn call(&self, pos: usize, req: Request) -> Result<Response, NodeError> {
        self.transport.call(NodeId(pos), req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    /// Fig. 1 trapezoid: 15 replicas in levels of 3, 5, 7.
    fn client() -> (TrapFrClient<LocalTransport>, Cluster) {
        let shape = TrapezoidShape::new(2, 3, 2).unwrap();
        let th = WriteThresholds::paper_default(&shape, 2).unwrap();
        let cluster = Cluster::new(15);
        let c = TrapFrClient::new(shape, th, LocalTransport::new(cluster.clone())).unwrap();
        (c, cluster)
    }

    #[test]
    fn create_write_read_cycle() {
        let (c, _cluster) = client();
        c.create(1, b"genesis").unwrap();
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"genesis");
        assert_eq!(out.version, 0);
        let w = c.write(1, b"updated").unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.validated.len(), 15, "all replicas live");
        assert_eq!(c.read(1).unwrap().bytes, b"updated");
    }

    #[test]
    fn read_survives_heavy_failures() {
        let (c, cluster) = client();
        c.create(1, b"payload").unwrap();
        c.write(1, b"v1-data").unwrap();
        // Kill levels 0 and 1 entirely; level 2 (positions 8..15) has
        // r_2 = 6 — keep 6 alive.
        for pos in 0..9 {
            cluster.kill(pos);
        }
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"v1-data");
        assert_eq!(out.version, 1);
    }

    #[test]
    fn stale_replicas_never_served() {
        let (c, cluster) = client();
        c.create(1, b"aaaa").unwrap();
        // Node 2 (level 0) misses the write.
        cluster.kill(2);
        c.write(1, b"bbbb").unwrap();
        cluster.revive(2);
        // Even though node 2 is polled first-ish in level 0, the check
        // must surface version 1 and serve "bbbb".
        for _ in 0..4 {
            let out = c.read(1).unwrap();
            assert_eq!(out.bytes, b"bbbb");
            assert_eq!(out.version, 1);
        }
    }

    #[test]
    fn write_fails_when_a_level_lacks_quorum() {
        let (c, cluster) = client();
        c.create(1, b"zz").unwrap();
        // Level 1 = positions 3..8, w_1 = 2: leave only one alive.
        for pos in 4..8 {
            cluster.kill(pos);
        }
        let err = c.write(1, b"yy").unwrap_err();
        assert_eq!(
            err,
            ProtocolError::WriteQuorumNotMet {
                level: 1,
                needed: 2,
                achieved: 1
            }
        );
    }

    #[test]
    fn fr_version_discovery_never_blocks_a_feasible_write() {
        // Structural theorem: w_0 = ⌊b/2⌋ + 1 ≥ r_0 = s_0 − w_0 + 1, so
        // any failure pattern admitting a level-0 write quorum also
        // completes the level-0 version check — for TRAP-FR the embedded
        // read of Algorithm 1 can never be the reason a write fails.
        // (For TRAP-ERC this is false: the read additionally needs N_i or
        // a decode, which is what tq-sim quantifies against eq. 9.)
        let (c, cluster) = client();
        c.create(1, b"zz").unwrap();
        let mut rng = 0x12345678u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng
        };
        let mut ground_version = 0u64;
        for _ in 0..200 {
            let mask = next();
            let up: Vec<bool> = (0..15).map(|i| mask >> i & 1 == 1).collect();
            cluster.apply_availability(&up);
            let hinted = c.write_with_version(1, b"yy", ground_version + 1000);
            // Reset versions drift: hinted used a sandbox version bump;
            // track actual success for the embedded-read variant.
            match c.write(1, b"yy") {
                Ok(w) => ground_version = w.version,
                Err(ProtocolError::OldValueUnreadable(_)) => {
                    // Version discovery failed ⇒ fewer than r_0 ≤ w_0 live
                    // at level 0 ⇒ the write fan-out must be infeasible
                    // too. A pattern where only the read fails would
                    // break the theorem.
                    assert!(
                        hinted.is_err(),
                        "embedded read failed on a write-feasible pattern: {up:?}"
                    );
                }
                Err(ProtocolError::WriteQuorumNotMet { .. }) => {
                    assert!(
                        hinted.is_err(),
                        "hinted write succeeded where fan-out failed: {up:?}"
                    );
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn missing_object_reported() {
        let (c, _cluster) = client();
        assert_eq!(c.read(77).unwrap_err(), ProtocolError::StripeMissing);
    }

    #[test]
    fn rejects_small_transport() {
        let shape = TrapezoidShape::new(2, 3, 2).unwrap();
        let th = WriteThresholds::paper_default(&shape, 2).unwrap();
        let err = TrapFrClient::new(shape, th, LocalTransport::new(Cluster::new(3))).unwrap_err();
        assert!(matches!(err, ProtocolError::Node(_)));
    }
}
