//! Node recovery — rebuilding a replaced node from the surviving stripe.
//!
//! §I of the paper: "when one node fails, the blocks it owned have to be
//! reconstructed … this process may be very compute-intensive and may
//! have a significant impact on the storage system performances." The
//! paper measures availability, not recovery; this module supplies the
//! recovery workflow a deployment needs (and the `repair_cost` bench
//! quantifies the IO the paper's introduction talks about):
//!
//! * data node `i` → **exact repair**: Algorithm 2's decode rebuilds
//!   `b_i` bit-identically from k survivors (k block reads);
//! * parity node `j` → exact re-encode of its row from the k data blocks
//!   (the trapezoid protocol pins the coefficients `α_{j,·}`, so
//!   functional repair — see `tq_erasure::repair` — would change the
//!   version-guard bookkeeping on every client; we keep the code
//!   systematic and exact here, which is also what the paper assumes in
//!   its hybrid taxonomy for data blocks).

use bytes::Bytes;
use tq_cluster::{Request, Transport};

use crate::errors::ProtocolError;
use crate::trap_erc::TrapErcClient;

/// What a rebuild did, for IO accounting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildReport {
    /// The stripe index that was rebuilt.
    pub node: usize,
    /// Stripe indices read to source the rebuild.
    pub sources: Vec<usize>,
    /// Payload bytes written to the replacement node.
    pub bytes_written: usize,
}

impl<T: Transport> TrapErcClient<T> {
    /// Rebuilds stripe `id`'s block on a *replaced* (blank) node from the
    /// surviving nodes, installing both contents and version state.
    ///
    /// The replacement must be live; it contributes nothing to the reads
    /// (a blank node answers `NotFound`, which quorum logic ignores).
    ///
    /// # Errors
    /// Propagates read failures — a stripe that cannot be read cannot be
    /// rebuilt. [`ProtocolError::Node`] if the install on the replacement
    /// fails.
    pub fn rebuild_node(&self, id: u64, node: usize) -> Result<RebuildReport, ProtocolError> {
        let k = self.config().params().k();
        if self.config().params().is_data_index(node) {
            // Exact repair of b_node via the protocol read (Algorithm 2
            // will take the decode path, since the blank node holds
            // nothing).
            let out = self.read_block(id, node)?;
            let sources = match &out.path {
                crate::trap_erc::ReadPath::Decoded { nodes } => nodes.clone(),
                // Possible only if the "blank" node actually had data
                // (re-running a rebuild); treat its own copy as source.
                crate::trap_erc::ReadPath::Direct => vec![node],
            };
            // One shared allocation: the decoded block becomes the wire
            // payload of both the install and the version stamp.
            let bytes_written = out.bytes.len();
            let payload = Bytes::from(out.bytes);
            self.raw_call(
                node,
                Request::InitData {
                    id,
                    bytes: payload.clone(),
                },
            )
            .map_err(ProtocolError::Node)?;
            self.raw_call(
                node,
                Request::WriteData {
                    id,
                    bytes: payload,
                    version: out.version,
                },
            )
            .map_err(ProtocolError::Node)?;
            Ok(RebuildReport {
                node,
                sources,
                bytes_written,
            })
        } else {
            // Parity node: source all k data blocks (with versions), then
            // re-encode exactly this node's row.
            let mut data = Vec::with_capacity(k);
            let mut versions = Vec::with_capacity(k);
            let mut sources = Vec::with_capacity(k);
            for i in 0..k {
                let out = self.read_block(id, i)?;
                versions.push(out.version);
                data.push(out.bytes);
                sources.push(i);
            }
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            // The rebuild sources every data block anyway, so the
            // replacement gets a real cross-checksum vector, not a stub.
            let checks = tq_erasure::data_checks(&refs);
            let mut block = vec![0u8; refs[0].len()];
            // One fused register-blocked pass over all k source blocks.
            tq_gf256::slice_ops::linear_combination(
                self.codec().generator_row(node),
                &refs,
                &mut block,
            );
            let bytes_written = block.len();
            let payload = Bytes::from(block);
            self.raw_call(
                node,
                Request::InitParity {
                    id,
                    bytes: payload.clone(),
                    k,
                    checks: checks.clone(),
                },
            )
            .map_err(ProtocolError::Node)?;
            self.raw_call(
                node,
                Request::WriteParity {
                    id,
                    bytes: payload,
                    versions,
                    checks,
                },
            )
            .map_err(ProtocolError::Node)?;
            Ok(RebuildReport {
                node,
                sources,
                bytes_written,
            })
        }
    }

    /// Rebuilds every stripe in `ids` on the replaced node; returns one
    /// report per stripe.
    ///
    /// # Errors
    /// Stops at the first failing stripe.
    pub fn rebuild_node_stripes(
        &self,
        ids: &[u64],
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        ids.iter().map(|&id| self.rebuild_node(id, node)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::trap_erc::ReadPath;
    use tq_cluster::{Cluster, LocalTransport};

    fn setup() -> (TrapErcClient<LocalTransport>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8 * 3; 64]).collect();
        client.create_stripe(1, blocks).unwrap();
        (client, cluster)
    }

    #[test]
    fn rebuild_replaced_data_node() {
        let (client, cluster) = setup();
        client.write_block(1, 2, &[0xAA; 64]).unwrap();
        cluster.replace(2); // blank disk
                            // Blank node: reads of block 2 must decode.
        let pre = client.read_block(1, 2).unwrap();
        assert!(pre.decoded());
        let report = client.rebuild_node(1, 2).unwrap();
        assert_eq!(report.node, 2);
        assert_eq!(report.sources.len(), 8, "k source reads (the §I cost)");
        assert_eq!(report.bytes_written, 64);
        // Direct reads work again, at the right version.
        let post = client.read_block(1, 2).unwrap();
        assert_eq!(post.path, ReadPath::Direct);
        assert_eq!(post.bytes, vec![0xAA; 64]);
        assert_eq!(post.version, 1);
    }

    #[test]
    fn rebuild_replaced_parity_node() {
        let (client, cluster) = setup();
        client.write_block(1, 0, &[0x11; 64]).unwrap();
        client.write_block(1, 5, &[0x55; 64]).unwrap();
        cluster.replace(12);
        let report = client.rebuild_node(1, 12).unwrap();
        assert_eq!(report.sources, (0..8).collect::<Vec<_>>());
        // The rebuilt parity participates in writes (guard at the right
        // versions) and in decodes.
        let w = client.write_block(1, 0, &[0x12; 64]).unwrap();
        assert!(w.validated.contains(&12));
        cluster.kill(0);
        let r = client.read_block(1, 0).unwrap();
        assert_eq!(r.bytes, vec![0x12; 64]);
        assert!(r.decoded());
    }

    #[test]
    fn rebuild_needs_readable_stripe() {
        let (client, cluster) = setup();
        cluster.replace(3);
        // Kill 7 more nodes so fewer than k = 8 sources remain.
        for n in [0, 1, 2, 8, 9, 10, 11] {
            cluster.kill(n);
        }
        assert!(client.rebuild_node(1, 3).is_err());
    }

    #[test]
    fn rebuild_many_stripes() {
        let (client, cluster) = setup();
        for id in 2..6u64 {
            let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8 ^ id as u8; 64]).collect();
            client.create_stripe(id, blocks).unwrap();
        }
        cluster.replace(9);
        let reports = client.rebuild_node_stripes(&[1, 2, 3, 4, 5], 9).unwrap();
        assert_eq!(reports.len(), 5);
        for id in 1..6u64 {
            let w = client.write_block(id, 0, &[0x77; 64]).unwrap();
            assert!(w.validated.contains(&9), "stripe {id}");
        }
    }
}
