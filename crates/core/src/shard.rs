//! Sharded multi-stripe data plane: many trapezoid groups, one store.
//!
//! One trapezoid group scales consistency, not capacity: every stripe
//! of a [`QuorumStore`] lives on the same `n` nodes, so the group's
//! parity members bound the whole store's throughput. The paper's
//! motivating deployment (§I, VM virtual disks) needs the opposite
//! shape — many independent groups, each serving a slice of the stripe
//! namespace, so writers on different slices never share a node *or* a
//! lock. This module supplies that shape:
//!
//! * [`ShardMap`] — a deterministic, total, stable partition of stripe
//!   ids onto `S` shards, by multiplicative hashing (uniform placement
//!   for arbitrary id patterns) or by contiguous ranges (locality for
//!   sequential volumes);
//! * [`ShardedStore`] — `S` independent backends (each its own node set
//!   and transport) behind the one [`QuorumStore`] facade: single ops
//!   route to their shard, batch ops fan out shard-parallel on scoped
//!   threads, and maintenance (`scrub_shard`) iterates shards
//!   independently.
//!
//! **No global lock sits on the read/write path.** The only shared
//! mutable state is the per-shard created-stripe registry, touched by
//! `create`/`provision_striped` (provisioning) and `scrub_shard`
//! (maintenance) — `read`, `write`, `read_batch` and `write_batch`
//! never take it.
//!
//! Determinism: batch fan-out over real transports runs one scoped
//! thread per addressed shard. Simulation harnesses whose transports
//! keep a single-threaded virtual clock (the DST's `SimTransport`) must
//! opt into [`ShardedStore::sequential_batches`], which visits shards
//! in ascending index order on the caller's thread — same results, same
//! accounting, bit-for-bit replayable.

#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::Mutex;

use crate::errors::ProtocolError;
use crate::store::{
    BatchReads, BatchWrite, BatchWrites, BlockAddr, OpReport, QuorumStore, StoreInfo,
};
use crate::trap_erc::{ReadOutcome, ScrubReport, WriteOutcome};

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, so consecutive
/// stripe ids land on unrelated shards.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a [`ShardMap`] assigns stripes to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Multiplicative hash of the mixed stripe id — uniform for any id
    /// pattern, including clustered or strided allocations.
    Hash,
    /// Contiguous runs of `stripes_per_shard` ids per shard, round-robin
    /// over shards — preserves locality for sequentially-allocated
    /// volumes.
    Range {
        /// Run length of consecutive stripe ids kept on one shard.
        stripes_per_shard: u64,
    },
}

/// A deterministic partition of the stripe-id namespace onto `S`
/// shards.
///
/// The map is **total** (every `u64` routes), **stable** (routing is a
/// pure function of the id — no state, no reconfiguration) and
/// **balanced** (hash placement is uniform up to multiplicative-hash
/// bias; range placement is exactly even over whole runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    strategy: Strategy,
}

impl ShardMap {
    /// A hash partition over `shards` shards.
    ///
    /// # Errors
    /// [`ProtocolError::Misconfigured`] on zero shards.
    pub fn hashed(shards: usize) -> Result<Self, ProtocolError> {
        if shards == 0 {
            return Err(ProtocolError::Misconfigured(
                "shard map needs at least one shard",
            ));
        }
        Ok(ShardMap {
            shards,
            strategy: Strategy::Hash,
        })
    }

    /// A range partition: runs of `stripes_per_shard` consecutive ids
    /// per shard, striped round-robin over `shards` shards.
    ///
    /// # Errors
    /// [`ProtocolError::Misconfigured`] on zero shards or a zero run
    /// length.
    pub fn ranged(shards: usize, stripes_per_shard: u64) -> Result<Self, ProtocolError> {
        if shards == 0 {
            return Err(ProtocolError::Misconfigured(
                "shard map needs at least one shard",
            ));
        }
        if stripes_per_shard == 0 {
            return Err(ProtocolError::Misconfigured(
                "range shard map needs a positive run length",
            ));
        }
        Ok(ShardMap {
            shards,
            strategy: Strategy::Range { stripes_per_shard },
        })
    }

    /// Number of shards this map routes onto.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard serving `stripe`. Total and stable: a pure function of
    /// the id, always `< shards()`.
    pub fn shard_of(&self, stripe: u64) -> usize {
        match self.strategy {
            // Multiply-shift reduction of the mixed id: an unbiased-to-
            // 2^-64 map of the full u64 range onto 0..shards.
            Strategy::Hash => ((mix64(stripe) as u128 * self.shards as u128) >> 64) as usize,
            Strategy::Range { stripes_per_shard } => {
                ((stripe / stripes_per_shard) % self.shards as u64) as usize
            }
        }
    }
}

/// `S` independent [`QuorumStore`] backends behind one store facade.
///
/// Each shard is a complete protocol group — its own node set, its own
/// transport, its own stripe namespace slice per the [`ShardMap`].
/// Single ops route; batch ops fan out one scoped thread per addressed
/// shard (unless [`sequential_batches`](Self::sequential_batches) was
/// selected); `scrub`/`scrub_shard` keep maintenance per-shard. The
/// read/write hot path takes no lock in this layer.
///
/// Shards are expected to be homogeneous (same protocol and geometry);
/// [`StoreInfo`] is reported from shard 0 with `nodes` summed over all
/// shards and the protocol labelled `"sharded"`.
pub struct ShardedStore<S: QuorumStore> {
    shards: Vec<S>,
    map: ShardMap,
    /// Per-shard registry of provisioned stripe ids. Provisioning and
    /// maintenance only — never touched by reads or writes.
    created: Vec<Mutex<BTreeSet<u64>>>,
    parallel: bool,
}

impl<S: QuorumStore> ShardedStore<S> {
    /// Binds `shards` backends to `map`. The map's shard count must
    /// equal the number of backends.
    ///
    /// # Errors
    /// [`ProtocolError::Misconfigured`] on an empty backend list or a
    /// count mismatch.
    pub fn new(shards: Vec<S>, map: ShardMap) -> Result<Self, ProtocolError> {
        if shards.is_empty() {
            return Err(ProtocolError::Misconfigured(
                "sharded store needs at least one backend",
            ));
        }
        if shards.len() != map.shards() {
            return Err(ProtocolError::Misconfigured(
                "shard map and backend count disagree",
            ));
        }
        let created = (0..shards.len()).map(|_| Mutex::default()).collect();
        Ok(ShardedStore {
            shards,
            map,
            created,
            parallel: true,
        })
    }

    /// Switches batch fan-out from scoped threads to an in-order walk of
    /// the addressed shards on the caller's thread. Required when the
    /// shards share a transport whose clock or RNG is single-threaded
    /// (the DST's `SimTransport`); same results, deterministic order.
    #[must_use]
    pub fn sequential_batches(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Direct access to one shard's backend (fault injection, typed
    /// extension surfaces).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_store(&self, shard: usize) -> &S {
        &self.shards[shard]
    }

    /// `true` iff batch ops fan out on scoped threads.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Stripe ids provisioned through this store that route to `shard`,
    /// in ascending order.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_stripes(&self, shard: usize) -> Vec<u64> {
        self.created[shard].lock().iter().copied().collect()
    }

    /// Scrubs every stripe this store has provisioned on `shard` —
    /// the shard-targeted maintenance entry point; other shards keep
    /// serving untouched. Must run quiesced like [`QuorumStore::scrub`].
    ///
    /// The per-stripe scrubs inherit the underlying store's maintenance
    /// behaviour: their rounds travel the background lane and, with an
    /// armed health registry on the shard's transport, route repair
    /// fetches toward healthy members — so scrubbing one shard steals
    /// as little as possible from foreground traffic on the others.
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be read back.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn scrub_shard(&self, shard: usize) -> Result<Vec<(u64, ScrubReport)>, ProtocolError> {
        let stripes = self.shard_stripes(shard);
        let mut out = Vec::with_capacity(stripes.len());
        for stripe in stripes {
            out.push((stripe, self.shards[shard].scrub(stripe)?));
        }
        Ok(out)
    }

    /// Provisions `stripe_count` zero-filled stripes (`width` blocks of
    /// `block_len` bytes each) with ids `base_id..base_id +
    /// stripe_count`, fanning the creates out shard-parallel — the bulk
    /// path a volume or load harness uses to lay down millions of
    /// blocks without serialising on one group.
    ///
    /// # Errors
    /// Propagates the first stripe-creation failure.
    pub fn provision_striped(
        &self,
        base_id: u64,
        stripe_count: u64,
        width: usize,
        block_len: usize,
    ) -> Result<(), ProtocolError> {
        let mut groups: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for s in 0..stripe_count {
            let id = base_id + s;
            groups.entry(self.map.shard_of(id)).or_default().push(id);
        }
        let create_group = |shard: usize, ids: &[u64]| -> Result<(), ProtocolError> {
            for &id in ids {
                self.shards[shard].create(id, vec![vec![0u8; block_len]; width])?;
            }
            let mut registry = self.created[shard].lock();
            registry.extend(ids.iter().copied());
            Ok(())
        };
        if self.parallel && groups.len() > 1 {
            let create_group = &create_group;
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(&shard, ids)| {
                        let ids = ids.as_slice();
                        scope.spawn(move || create_group(shard, ids))
                    })
                    .collect();
                for h in handles {
                    h.join().expect("shard provisioning worker")?;
                }
                Ok(())
            })
        } else {
            for (&shard, ids) in &groups {
                create_group(shard, ids)?;
            }
            Ok(())
        }
    }

    /// Groups item positions by the shard their stripe routes to,
    /// ascending by shard index (deterministic fan-out order).
    fn group_by_shard(&self, stripes: impl Iterator<Item = u64>) -> Vec<(usize, Vec<usize>)> {
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, stripe) in stripes.enumerate() {
            buckets
                .entry(self.map.shard_of(stripe))
                .or_default()
                .push(i);
        }
        buckets.into_iter().collect()
    }
}

impl<S: QuorumStore> std::fmt::Debug for ShardedStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("map", &self.map)
            .field("parallel", &self.parallel)
            .finish()
    }
}

impl<S: QuorumStore> QuorumStore for ShardedStore<S> {
    fn info(&self) -> StoreInfo {
        let inner = self.shards[0].info();
        StoreInfo {
            protocol: "sharded",
            nodes: self.shards.iter().map(|s| s.info().nodes).sum(),
            ..inner
        }
    }

    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        let shard = self.map.shard_of(stripe);
        let report = self.shards[shard].create(stripe, blocks)?;
        self.created[shard].lock().insert(stripe);
        Ok(report)
    }

    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
        self.shards[self.map.shard_of(addr.stripe)].read(addr)
    }

    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        self.shards[self.map.shard_of(addr.stripe)].write(addr, new)
    }

    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
        let groups = self.group_by_shard(addrs.iter().map(|a| a.stripe));
        let run_group = |shard: usize, idxs: &[usize]| -> BatchReads {
            let sub: Vec<BlockAddr> = idxs.iter().map(|&i| addrs[i]).collect();
            self.shards[shard].read_batch(&sub)
        };
        let batches: Vec<BatchReads> = if self.parallel && groups.len() > 1 {
            let run_group = &run_group;
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(shard, idxs)| {
                        let (shard, idxs) = (*shard, idxs.as_slice());
                        scope.spawn(move || run_group(shard, idxs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard read-batch worker"))
                    .collect()
            })
        } else {
            groups
                .iter()
                .map(|(shard, idxs)| run_group(*shard, idxs))
                .collect()
        };
        let mut outcomes: Vec<Option<Result<ReadOutcome, ProtocolError>>> =
            addrs.iter().map(|_| None).collect();
        let mut report = OpReport::default();
        for ((_, idxs), batch) in groups.iter().zip(batches) {
            debug_assert_eq!(idxs.len(), batch.outcomes.len());
            for (&i, outcome) in idxs.iter().zip(batch.outcomes) {
                outcomes[i] = Some(outcome);
            }
            report.merge_from(batch.report);
        }
        BatchReads {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every batch item served by its shard"))
                .collect(),
            report,
        }
    }

    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        let groups = self.group_by_shard(items.iter().map(|it| it.addr.stripe));
        let run_group = |shard: usize, idxs: &[usize]| -> BatchWrites {
            let sub: Vec<BatchWrite<'_>> = idxs.iter().map(|&i| items[i]).collect();
            self.shards[shard].write_batch(&sub)
        };
        let batches: Vec<BatchWrites> = if self.parallel && groups.len() > 1 {
            let run_group = &run_group;
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(shard, idxs)| {
                        let (shard, idxs) = (*shard, idxs.as_slice());
                        scope.spawn(move || run_group(shard, idxs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard write-batch worker"))
                    .collect()
            })
        } else {
            groups
                .iter()
                .map(|(shard, idxs)| run_group(*shard, idxs))
                .collect()
        };
        let mut outcomes: Vec<Option<Result<WriteOutcome, ProtocolError>>> =
            items.iter().map(|_| None).collect();
        let mut report = OpReport::default();
        for ((_, idxs), batch) in groups.iter().zip(batches) {
            debug_assert_eq!(idxs.len(), batch.outcomes.len());
            for (&i, outcome) in idxs.iter().zip(batch.outcomes) {
                outcomes[i] = Some(outcome);
            }
            report.merge_from(batch.report);
        }
        BatchWrites {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every batch item served by its shard"))
                .collect(),
            report,
        }
    }

    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        self.shards[self.map.shard_of(stripe)].scrub(stripe)
    }

    fn stripe_nodes(&self, stripe: u64) -> usize {
        self.shards[self.map.shard_of(stripe)].stripe_nodes(stripe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use tq_cluster::{Cluster, LocalTransport};

    #[test]
    fn shard_map_validates_and_routes() {
        assert!(ShardMap::hashed(0).is_err());
        assert!(ShardMap::ranged(0, 4).is_err());
        assert!(ShardMap::ranged(4, 0).is_err());

        let hashed = ShardMap::hashed(5).unwrap();
        assert_eq!(hashed.shards(), 5);
        for stripe in [0u64, 1, 42, u64::MAX] {
            assert!(hashed.shard_of(stripe) < 5, "total over the id space");
            assert_eq!(
                hashed.shard_of(stripe),
                hashed.shard_of(stripe),
                "stable routing"
            );
        }

        let ranged = ShardMap::ranged(3, 4).unwrap();
        assert_eq!(ranged.shard_of(0), 0);
        assert_eq!(ranged.shard_of(3), 0, "run of 4 stays put");
        assert_eq!(ranged.shard_of(4), 1);
        assert_eq!(ranged.shard_of(11), 2);
        assert_eq!(ranged.shard_of(12), 0, "round-robin wraps");
    }

    #[test]
    fn hash_map_spreads_sequential_ids() {
        let map = ShardMap::hashed(8).unwrap();
        let mut loads = [0usize; 8];
        for stripe in 0..8_000u64 {
            loads[map.shard_of(stripe)] += 1;
        }
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(min > 0, "no empty shard: {loads:?}");
        assert!(
            (max as f64) / (min as f64) < 1.3,
            "sequential ids must spread evenly: {loads:?}"
        );
    }

    /// One shard per backend instance; the same blocks must round-trip
    /// whether addressed singly or through the cross-shard batch path,
    /// and batches must agree between parallel and sequential fan-out.
    #[test]
    fn sharded_store_routes_and_batches() {
        let build = |sequential: bool| {
            let shards: Vec<_> = (0..3)
                .map(|_| {
                    Store::trap_erc(9, 6)
                        .shape(2, 1, 1)
                        .uniform_w(2)
                        .transport(LocalTransport::new(Cluster::new(9)))
                        .build()
                        .unwrap()
                })
                .collect();
            let store = ShardedStore::new(shards, ShardMap::hashed(3).unwrap()).unwrap();
            if sequential {
                store.sequential_batches()
            } else {
                store
            }
        };
        for sequential in [false, true] {
            let store = build(sequential);
            assert_eq!(store.info().protocol, "sharded");
            assert_eq!(store.info().nodes, 27);
            assert_eq!(store.stripe_nodes(7), 9, "one group per stripe");

            for stripe in 0..6u64 {
                store
                    .create(stripe, (0..6).map(|i| vec![i as u8; 16]).collect())
                    .unwrap();
            }
            let addrs: Vec<BlockAddr> = (0..6u64)
                .map(|s| BlockAddr::new(s, (s % 6) as usize))
                .collect();
            let payloads: Vec<Vec<u8>> = (0..6u8).map(|i| vec![0xC0 | i; 16]).collect();
            let items: Vec<BatchWrite<'_>> = addrs
                .iter()
                .zip(&payloads)
                .map(|(&a, p)| BatchWrite::new(a, p))
                .collect();
            let writes = store.write_batch(&items);
            assert!(writes.all_ok(), "sequential={sequential}");

            let reads = store.read_batch(&addrs);
            assert!(reads.all_ok());
            for (out, want) in reads.outcomes.iter().zip(&payloads) {
                assert_eq!(&out.as_ref().unwrap().bytes, want);
            }
            // Single-op routing agrees with the batch path.
            for (&a, want) in addrs.iter().zip(&payloads) {
                assert_eq!(&store.read(a).unwrap().bytes, want);
            }
        }
    }

    #[test]
    fn provision_and_shard_scrub_cover_the_registry() {
        let shards: Vec<_> = (0..2)
            .map(|_| {
                Store::trap_erc(9, 6)
                    .shape(2, 1, 1)
                    .uniform_w(2)
                    .transport(LocalTransport::new(Cluster::new(9)))
                    .build()
                    .unwrap()
            })
            .collect();
        let store = ShardedStore::new(shards, ShardMap::hashed(2).unwrap()).unwrap();
        store.provision_striped(100, 10, 6, 8).unwrap();
        let (a, b) = (store.shard_stripes(0), store.shard_stripes(1));
        assert_eq!(a.len() + b.len(), 10, "every stripe registered once");
        for shard in 0..2 {
            let scrubbed = store.scrub_shard(shard).unwrap();
            assert_eq!(scrubbed.len(), store.shard_stripes(shard).len());
            assert!(scrubbed
                .iter()
                .all(|(_, report)| report.refreshed.len() == 9));
        }
    }

    #[test]
    fn construction_is_validated() {
        let shards: Vec<Box<dyn QuorumStore>> = vec![];
        assert!(ShardedStore::new(shards, ShardMap::hashed(1).unwrap()).is_err());
        let one = vec![Store::majority(3)
            .transport(LocalTransport::new(Cluster::new(3)))
            .build()
            .unwrap()];
        assert!(ShardedStore::new(one, ShardMap::hashed(2).unwrap()).is_err());
    }
}
