//! A byte-addressable volume over any [`QuorumStore`] backend.
//!
//! The paper's motivating deployment (§I) is virtual-disk storage: VMs
//! issue block reads/writes against an image that must stay strictly
//! consistent. [`Volume`] packages a store into that shape:
//!
//! * logical blocks of `block_size` bytes, striped round-robin over
//!   stripes of the backend's width (`lba → (stripe id, block index)`);
//! * byte-granular `read_at` / `write_at` with read-modify-write at
//!   unaligned edges — what a virtio/iSCSI head would do;
//! * writes serialised per block through a [`StripeLockManager`];
//! * maintenance entry points (`scrub`, and `rebuild_node` on TRAP-ERC
//!   backends) wrapping the recovery workflows.
//!
//! The volume is generic over `S: QuorumStore`, so the same virtual disk
//! runs on TRAP-ERC, TRAP-FR, ROWA or Majority — including over
//! `Box<dyn QuorumStore>` when the backend is chosen at runtime.

use std::sync::Arc;

use tq_cluster::Transport;

use crate::errors::ProtocolError;
use crate::locking::StripeLockManager;
use crate::recovery::RebuildReport;
use crate::store::{BlockAddr, QuorumStore};
use crate::trap_erc::TrapErcClient;

/// A fixed-size logical volume on one cluster.
#[derive(Debug)]
pub struct Volume<S: QuorumStore> {
    store: S,
    locks: Arc<StripeLockManager>,
    block_size: usize,
    logical_blocks: usize,
    /// Stripe ids are `base_id..base_id + stripe_count`.
    base_id: u64,
    stripe_count: u64,
    blocks_per_stripe: usize,
}

impl<S: QuorumStore> Volume<S> {
    /// Provisions a zero-filled volume of `logical_blocks` blocks of
    /// `block_size` bytes, using stripe ids starting at `base_id`.
    /// Requires every node live (provisioning). Stripes carry the
    /// backend's fixed width, or `k = 8` blocks on width-free
    /// (replication) backends.
    ///
    /// # Errors
    /// Propagates stripe-creation failures.
    ///
    /// # Panics
    /// Panics on zero `block_size` / `logical_blocks` (programmer error).
    pub fn create(
        store: S,
        base_id: u64,
        block_size: usize,
        logical_blocks: usize,
    ) -> Result<Self, ProtocolError> {
        assert!(block_size > 0, "block_size must be positive");
        assert!(logical_blocks > 0, "volume needs at least one block");
        let blocks_per_stripe = store.info().stripe_width.unwrap_or(8);
        let stripe_count = logical_blocks.div_ceil(blocks_per_stripe) as u64;
        for s in 0..stripe_count {
            store.create(base_id + s, vec![vec![0u8; block_size]; blocks_per_stripe])?;
        }
        Ok(Volume {
            store,
            locks: StripeLockManager::new(),
            block_size,
            logical_blocks,
            base_id,
            stripe_count,
            blocks_per_stripe,
        })
    }

    /// The backing store (for fault-injection handles in tests and the
    /// typed extension surface).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of logical blocks.
    pub fn logical_blocks(&self) -> usize {
        self.logical_blocks
    }

    /// Volume capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.logical_blocks * self.block_size
    }

    fn locate(&self, lba: usize) -> Result<BlockAddr, ProtocolError> {
        if lba >= self.logical_blocks {
            return Err(ProtocolError::SizeMismatch);
        }
        Ok(BlockAddr::new(
            self.base_id + (lba / self.blocks_per_stripe) as u64,
            lba % self.blocks_per_stripe,
        ))
    }

    /// Reads one logical block.
    ///
    /// # Errors
    /// Out-of-range `lba` or protocol read failure.
    pub fn read_block(&self, lba: usize) -> Result<Vec<u8>, ProtocolError> {
        Ok(self.store.read(self.locate(lba)?)?.bytes)
    }

    /// Writes one logical block (must be exactly `block_size` bytes),
    /// serialised against other writers of the same block.
    ///
    /// # Errors
    /// Out-of-range `lba`, wrong length, or protocol write failure.
    pub fn write_block(&self, lba: usize, data: &[u8]) -> Result<u64, ProtocolError> {
        if data.len() != self.block_size {
            return Err(ProtocolError::SizeMismatch);
        }
        let addr = self.locate(lba)?;
        let _guard = self.locks.lock(addr.stripe, addr.block);
        Ok(self.store.write(addr, data)?.version)
    }

    /// Reads `len` bytes starting at byte `offset`, spanning blocks as
    /// needed.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn read_at(&self, offset: usize, len: usize) -> Result<Vec<u8>, ProtocolError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(len - out.len());
            let block = self.read_block(lba)?;
            out.extend_from_slice(&block[in_block..in_block + take]);
            pos += take;
        }
        Ok(out)
    }

    /// Writes `data` at byte `offset`, spanning blocks; unaligned edges
    /// use read-modify-write under the per-block lock.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn write_at(&self, offset: usize, data: &[u8]) -> Result<(), ProtocolError> {
        if offset
            .checked_add(data.len())
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(remaining.len());
            let addr = self.locate(lba)?;
            // Hold the (stripe, block) lock across the whole
            // read-modify-write so a concurrent writer of the same block
            // cannot interleave between the read and the write.
            let _guard = self.locks.lock(addr.stripe, addr.block);
            let mut buf = if take == self.block_size {
                vec![0u8; self.block_size]
            } else {
                self.store.read(addr)?.bytes
            };
            buf[in_block..in_block + take].copy_from_slice(&remaining[..take]);
            self.store.write(addr, &buf)?;
            pos += take;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// Scrubs every stripe (anti-entropy through the backend's
    /// [`QuorumStore::scrub`]); returns total node-states refreshed.
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be read back.
    pub fn scrub(&self) -> Result<usize, ProtocolError> {
        let mut refreshed = 0;
        for s in 0..self.stripe_count {
            refreshed += self.store.scrub(self.base_id + s)?.refreshed.len();
        }
        Ok(refreshed)
    }
}

impl<T: Transport> Volume<TrapErcClient<T>> {
    /// Rebuilds a replaced node across every stripe of this volume (the
    /// TRAP-ERC-specific recovery workflow; other backends heal through
    /// [`Volume::scrub`]).
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be rebuilt.
    pub fn rebuild_node(&self, node: usize) -> Result<Vec<RebuildReport>, ProtocolError> {
        let ids: Vec<u64> = (0..self.stripe_count).map(|s| self.base_id + s).collect();
        self.store.rebuild_node_stripes(&ids, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::store::Store;
    use tq_cluster::{Cluster, LocalTransport};

    fn volume(
        blocks: usize,
        block_size: usize,
    ) -> (Volume<TrapErcClient<LocalTransport>>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let vol = Volume::create(client, 100, block_size, blocks).unwrap();
        (vol, cluster)
    }

    #[test]
    fn geometry() {
        let (vol, _c) = volume(20, 512);
        assert_eq!(vol.block_size(), 512);
        assert_eq!(vol.logical_blocks(), 20);
        assert_eq!(vol.capacity(), 20 * 512);
        // 20 blocks over k = 8 ⇒ 3 stripes.
        assert_eq!(vol.stripe_count, 3);
    }

    #[test]
    fn block_io_round_trip() {
        let (vol, _c) = volume(20, 256);
        for lba in [0usize, 7, 8, 19] {
            let data = vec![lba as u8 + 1; 256];
            let v = vol.write_block(lba, &data).unwrap();
            assert_eq!(v, 1);
            assert_eq!(vol.read_block(lba).unwrap(), data);
        }
        // Fresh blocks read as zeros.
        assert!(vol.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn bounds_checked() {
        let (vol, _c) = volume(4, 128);
        assert!(vol.read_block(4).is_err());
        assert!(vol.write_block(4, &[0; 128]).is_err());
        assert!(vol.write_block(0, &[0; 100]).is_err());
        assert!(vol.read_at(4 * 128 - 10, 11).is_err());
        assert!(vol.write_at(usize::MAX, &[1]).is_err());
    }

    #[test]
    fn byte_io_spans_blocks() {
        let (vol, _c) = volume(6, 64);
        // Write 150 bytes starting mid-block: touches blocks 0, 1, 2, 3.
        let payload: Vec<u8> = (0..150).map(|i| i as u8).collect();
        vol.write_at(40, &payload).unwrap();
        assert_eq!(vol.read_at(40, 150).unwrap(), payload);
        // Edges preserved by the read-modify-write.
        assert!(vol.read_at(0, 40).unwrap().iter().all(|&b| b == 0));
        assert!(vol.read_at(190, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn survives_failure_and_rebuild() {
        let (vol, cluster) = volume(16, 128);
        for lba in 0..16 {
            vol.write_block(lba, &[lba as u8 ^ 0x5A; 128]).unwrap();
        }
        // Data node 3 dies and is replaced with blank hardware.
        cluster.replace(3);
        // Reads still work (decode path) ...
        for lba in 0..16 {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 ^ 0x5A; 128]);
        }
        // ... and the rebuild restores direct service on every stripe.
        let reports = vol.rebuild_node(3).unwrap();
        assert_eq!(reports.len(), 2);
        let scrubbed = vol.scrub().unwrap();
        assert_eq!(scrubbed, 2 * 15);
    }

    #[test]
    fn volume_runs_on_any_backend() {
        // The same virtual-disk shape on a replication backend, through
        // a trait object — the store choice is a runtime decision.
        let cluster = Cluster::new(5);
        let store = Store::majority(5)
            .transport(LocalTransport::new(cluster.clone()))
            .build()
            .unwrap();
        let vol = Volume::create(store, 0, 64, 16).unwrap();
        for lba in [0usize, 7, 15] {
            vol.write_block(lba, &[lba as u8 | 0x80; 64]).unwrap();
        }
        cluster.kill(1);
        cluster.kill(4);
        for lba in [0usize, 7, 15] {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 | 0x80; 64]);
        }
        for n in 0..5 {
            cluster.revive(n);
        }
        assert!(vol.scrub().unwrap() > 0, "stale replicas refreshed");
    }

    #[test]
    fn concurrent_byte_writers_disjoint_ranges() {
        use std::sync::Arc;
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster)).unwrap();
        let vol = Arc::new(Volume::create(client, 7, 64, 16).unwrap());
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let vol = Arc::clone(&vol);
                std::thread::spawn(move || {
                    // Each thread owns a 256-byte range (4 blocks).
                    let base = t * 256;
                    let payload = vec![t as u8 + 1; 256];
                    vol.write_at(base, &payload).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4usize {
            assert_eq!(vol.read_at(t * 256, 256).unwrap(), vec![t as u8 + 1; 256]);
        }
    }
}
