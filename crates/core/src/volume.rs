//! A byte-addressable volume over TRAP-ERC stripes.
//!
//! The paper's motivating deployment (§I) is virtual-disk storage: VMs
//! issue block reads/writes against an image that must stay strictly
//! consistent. [`Volume`] packages the protocol into that shape:
//!
//! * logical blocks of `block_size` bytes, striped round-robin over
//!   (n, k) stripes (`lba → (stripe id, block index)`);
//! * byte-granular `read_at` / `write_at` with read-modify-write at
//!   unaligned edges — what a virtio/iSCSI head would do;
//! * writes serialised per block through a [`StripeLockManager`];
//! * maintenance entry points (`scrub`, `rebuild_node`) wrapping the
//!   recovery workflows.

use std::sync::Arc;

use tq_cluster::Transport;

use crate::errors::ProtocolError;
use crate::locking::StripeLockManager;
use crate::recovery::RebuildReport;
use crate::trap_erc::TrapErcClient;

/// A fixed-size logical volume on one cluster.
#[derive(Debug)]
pub struct Volume<T: Transport> {
    client: TrapErcClient<T>,
    locks: Arc<StripeLockManager>,
    block_size: usize,
    logical_blocks: usize,
    /// Stripe ids are `base_id..base_id + stripe_count`.
    base_id: u64,
    stripe_count: u64,
}

impl<T: Transport> Volume<T> {
    /// Provisions a zero-filled volume of `logical_blocks` blocks of
    /// `block_size` bytes, using stripe ids starting at `base_id`.
    /// Requires every node live (provisioning).
    ///
    /// # Errors
    /// Propagates stripe-creation failures.
    ///
    /// # Panics
    /// Panics on zero `block_size` / `logical_blocks` (programmer error).
    pub fn create(
        client: TrapErcClient<T>,
        base_id: u64,
        block_size: usize,
        logical_blocks: usize,
    ) -> Result<Self, ProtocolError> {
        assert!(block_size > 0, "block_size must be positive");
        assert!(logical_blocks > 0, "volume needs at least one block");
        let k = client.config().params().k();
        let stripe_count = logical_blocks.div_ceil(k) as u64;
        for s in 0..stripe_count {
            client.create_stripe(base_id + s, vec![vec![0u8; block_size]; k])?;
        }
        Ok(Volume {
            client,
            locks: StripeLockManager::new(),
            block_size,
            logical_blocks,
            base_id,
            stripe_count,
        })
    }

    /// The protocol client (for fault-injection handles in tests).
    pub fn client(&self) -> &TrapErcClient<T> {
        &self.client
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of logical blocks.
    pub fn logical_blocks(&self) -> usize {
        self.logical_blocks
    }

    /// Volume capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.logical_blocks * self.block_size
    }

    fn locate(&self, lba: usize) -> Result<(u64, usize), ProtocolError> {
        if lba >= self.logical_blocks {
            return Err(ProtocolError::SizeMismatch);
        }
        let k = self.client.config().params().k();
        Ok((self.base_id + (lba / k) as u64, lba % k))
    }

    /// Reads one logical block.
    ///
    /// # Errors
    /// Out-of-range `lba` or protocol read failure.
    pub fn read_block(&self, lba: usize) -> Result<Vec<u8>, ProtocolError> {
        let (stripe, block) = self.locate(lba)?;
        Ok(self.client.read_block(stripe, block)?.bytes)
    }

    /// Writes one logical block (must be exactly `block_size` bytes),
    /// serialised against other writers of the same block.
    ///
    /// # Errors
    /// Out-of-range `lba`, wrong length, or protocol write failure.
    pub fn write_block(&self, lba: usize, data: &[u8]) -> Result<u64, ProtocolError> {
        if data.len() != self.block_size {
            return Err(ProtocolError::SizeMismatch);
        }
        let (stripe, block) = self.locate(lba)?;
        Ok(self
            .client
            .write_block_locked(&self.locks, stripe, block, data)?
            .version)
    }

    /// Reads `len` bytes starting at byte `offset`, spanning blocks as
    /// needed.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn read_at(&self, offset: usize, len: usize) -> Result<Vec<u8>, ProtocolError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(len - out.len());
            let block = self.read_block(lba)?;
            out.extend_from_slice(&block[in_block..in_block + take]);
            pos += take;
        }
        Ok(out)
    }

    /// Writes `data` at byte `offset`, spanning blocks; unaligned edges
    /// use read-modify-write under the per-block lock.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn write_at(&self, offset: usize, data: &[u8]) -> Result<(), ProtocolError> {
        if offset
            .checked_add(data.len())
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(remaining.len());
            let (stripe, block) = self.locate(lba)?;
            // Hold the (stripe, block) lock across the whole
            // read-modify-write so a concurrent writer of the same block
            // cannot interleave between the read and the write.
            let _guard = self.locks.lock(stripe, block);
            let mut buf = if take == self.block_size {
                vec![0u8; self.block_size]
            } else {
                self.client.read_block(stripe, block)?.bytes
            };
            buf[in_block..in_block + take].copy_from_slice(&remaining[..take]);
            self.client.write_block(stripe, block, &buf)?;
            pos += take;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// Scrubs every stripe (see [`TrapErcClient::scrub_stripe`]); returns
    /// total node-states refreshed.
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be read back.
    pub fn scrub(&self) -> Result<usize, ProtocolError> {
        let mut refreshed = 0;
        for s in 0..self.stripe_count {
            refreshed += self.client.scrub_stripe(self.base_id + s)?.refreshed.len();
        }
        Ok(refreshed)
    }

    /// Rebuilds a replaced node across every stripe of this volume.
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be rebuilt.
    pub fn rebuild_node(&self, node: usize) -> Result<Vec<RebuildReport>, ProtocolError> {
        let ids: Vec<u64> = (0..self.stripe_count).map(|s| self.base_id + s).collect();
        self.client.rebuild_node_stripes(&ids, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use tq_cluster::{Cluster, LocalTransport};

    fn volume(blocks: usize, block_size: usize) -> (Volume<LocalTransport>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let vol = Volume::create(client, 100, block_size, blocks).unwrap();
        (vol, cluster)
    }

    #[test]
    fn geometry() {
        let (vol, _c) = volume(20, 512);
        assert_eq!(vol.block_size(), 512);
        assert_eq!(vol.logical_blocks(), 20);
        assert_eq!(vol.capacity(), 20 * 512);
        // 20 blocks over k = 8 ⇒ 3 stripes.
        assert_eq!(vol.stripe_count, 3);
    }

    #[test]
    fn block_io_round_trip() {
        let (vol, _c) = volume(20, 256);
        for lba in [0usize, 7, 8, 19] {
            let data = vec![lba as u8 + 1; 256];
            let v = vol.write_block(lba, &data).unwrap();
            assert_eq!(v, 1);
            assert_eq!(vol.read_block(lba).unwrap(), data);
        }
        // Fresh blocks read as zeros.
        assert!(vol.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn bounds_checked() {
        let (vol, _c) = volume(4, 128);
        assert!(vol.read_block(4).is_err());
        assert!(vol.write_block(4, &[0; 128]).is_err());
        assert!(vol.write_block(0, &[0; 100]).is_err());
        assert!(vol.read_at(4 * 128 - 10, 11).is_err());
        assert!(vol.write_at(usize::MAX, &[1]).is_err());
    }

    #[test]
    fn byte_io_spans_blocks() {
        let (vol, _c) = volume(6, 64);
        // Write 150 bytes starting mid-block: touches blocks 0, 1, 2, 3.
        let payload: Vec<u8> = (0..150).map(|i| i as u8).collect();
        vol.write_at(40, &payload).unwrap();
        assert_eq!(vol.read_at(40, 150).unwrap(), payload);
        // Edges preserved by the read-modify-write.
        assert!(vol.read_at(0, 40).unwrap().iter().all(|&b| b == 0));
        assert!(vol.read_at(190, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn survives_failure_and_rebuild() {
        let (vol, cluster) = volume(16, 128);
        for lba in 0..16 {
            vol.write_block(lba, &[lba as u8 ^ 0x5A; 128]).unwrap();
        }
        // Data node 3 dies and is replaced with blank hardware.
        cluster.replace(3);
        // Reads still work (decode path) ...
        for lba in 0..16 {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 ^ 0x5A; 128]);
        }
        // ... and the rebuild restores direct service on every stripe.
        let reports = vol.rebuild_node(3).unwrap();
        assert_eq!(reports.len(), 2);
        let scrubbed = vol.scrub().unwrap();
        assert_eq!(scrubbed, 2 * 15);
    }

    #[test]
    fn concurrent_byte_writers_disjoint_ranges() {
        use std::sync::Arc;
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster)).unwrap();
        let vol = Arc::new(Volume::create(client, 7, 64, 16).unwrap());
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let vol = Arc::clone(&vol);
                std::thread::spawn(move || {
                    // Each thread owns a 256-byte range (4 blocks).
                    let base = t * 256;
                    let payload = vec![t as u8 + 1; 256];
                    vol.write_at(base, &payload).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4usize {
            assert_eq!(vol.read_at(t * 256, 256).unwrap(), vec![t as u8 + 1; 256]);
        }
    }
}
