//! A byte-addressable volume over any [`QuorumStore`] backend.
//!
//! The paper's motivating deployment (§I) is virtual-disk storage: VMs
//! issue block reads/writes against an image that must stay strictly
//! consistent. [`Volume`] packages a store into that shape:
//!
//! * logical blocks of `block_size` bytes, striped round-robin over
//!   stripes of a validated [`VolumeConfig`] width (`lba → (stripe id,
//!   block index)`);
//! * byte-granular `read_at` / `write_at` with read-modify-write at
//!   unaligned edges — what a virtio/iSCSI head would do;
//! * writes serialised per block through a sharded
//!   [`StripeLockManager`], so writers on different lock shards never
//!   touch the same mutex;
//! * maintenance entry points (`scrub`; `rebuild_node` on TRAP-ERC
//!   backends; shard-parallel `scrub_sharded` / per-shard
//!   `rebuild_shard_node` on [`ShardedStore`] backends) wrapping the
//!   recovery workflows.
//!
//! The volume is generic over `S: QuorumStore`, so the same virtual disk
//! runs on TRAP-ERC, TRAP-FR, ROWA or Majority — including over
//! `Box<dyn QuorumStore>` when the backend is chosen at runtime, and
//! over [`ShardedStore`] when one group is not enough.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::errors::{ProtocolError, VolumeError};
use crate::locking::StripeLockManager;
use crate::recovery::RebuildReport;
use crate::shard::ShardedStore;
use crate::store::{BlockAddr, QuorumStore, OBJECTS_PER_STRIPE};

/// Validated geometry for a [`Volume`].
///
/// `blocks_per_stripe` is explicit: leave it `None` only when the
/// backend stripes data at a fixed width (TRAP-ERC's `k`), in which
/// case that width is adopted. Width-free (replication) backends have
/// nothing to derive from and reject `None` with
/// [`VolumeError::WidthUnknown`] — the old silent `unwrap_or(8)` is
/// gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeConfig {
    /// First stripe id; the volume occupies `base_id..base_id +
    /// stripe_count`.
    pub base_id: u64,
    /// Logical block size in bytes.
    pub block_size: usize,
    /// Number of logical blocks.
    pub logical_blocks: usize,
    /// Blocks per stripe; `None` adopts the backend's fixed width.
    pub blocks_per_stripe: Option<usize>,
}

impl VolumeConfig {
    /// Geometry with the stripe width left to the backend (only valid on
    /// backends with a fixed width).
    pub fn new(base_id: u64, block_size: usize, logical_blocks: usize) -> Self {
        VolumeConfig {
            base_id,
            block_size,
            logical_blocks,
            blocks_per_stripe: None,
        }
    }

    /// Sets an explicit stripe width.
    #[must_use]
    pub fn blocks_per_stripe(mut self, width: usize) -> Self {
        self.blocks_per_stripe = Some(width);
        self
    }

    /// Validates the geometry against a backend's descriptor and
    /// resolves the effective stripe width.
    ///
    /// # Errors
    /// A typed [`VolumeError`] on zero fields, a width conflicting with
    /// the backend's fixed stripe width, a width outside the replicated
    /// object namespace, or a missing width on a width-free backend.
    fn resolve_width(&self, backend_width: Option<usize>) -> Result<usize, VolumeError> {
        if self.block_size == 0 {
            return Err(VolumeError::ZeroBlockSize);
        }
        if self.logical_blocks == 0 {
            return Err(VolumeError::ZeroBlocks);
        }
        match (self.blocks_per_stripe, backend_width) {
            (Some(0), _) => Err(VolumeError::ZeroStripeWidth),
            (Some(w), Some(fixed)) if w != fixed => Err(VolumeError::WidthMismatch {
                configured: w,
                backend: fixed,
            }),
            (Some(w), None) if w as u64 > OBJECTS_PER_STRIPE => Err(VolumeError::WidthOutOfRange {
                configured: w,
                max: OBJECTS_PER_STRIPE as usize,
            }),
            (Some(w), _) => Ok(w),
            (None, Some(fixed)) => Ok(fixed),
            (None, None) => Err(VolumeError::WidthUnknown),
        }
    }
}

/// A fixed-size logical volume on one cluster (or, over a
/// [`ShardedStore`], one federation of clusters).
#[derive(Debug)]
pub struct Volume<S: QuorumStore> {
    store: S,
    locks: Arc<StripeLockManager>,
    block_size: usize,
    logical_blocks: usize,
    /// Stripe ids are `base_id..base_id + stripe_count`.
    base_id: u64,
    stripe_count: u64,
    blocks_per_stripe: usize,
}

impl<S: QuorumStore> Volume<S> {
    /// Provisions a zero-filled volume with the given geometry.
    /// Requires every node live (provisioning).
    ///
    /// # Errors
    /// A typed [`VolumeError`] (wrapped in [`ProtocolError::Volume`]) on
    /// invalid geometry; otherwise propagates stripe-creation failures.
    pub fn with_config(store: S, config: VolumeConfig) -> Result<Self, ProtocolError> {
        let vol = Volume::attach(store, config)?;
        for s in 0..vol.stripe_count {
            vol.store.create(
                vol.base_id + s,
                vec![vec![0u8; vol.block_size]; vol.blocks_per_stripe],
            )?;
        }
        Ok(vol)
    }

    /// Binds a volume to already-provisioned stripes without issuing any
    /// creates — for stores laid down in bulk (e.g.
    /// [`ShardedStore::provision_striped`]) or reopened across client
    /// restarts. The geometry must match what was provisioned; nothing
    /// is verified against the nodes here.
    ///
    /// # Errors
    /// A typed [`VolumeError`] on invalid geometry.
    pub fn open(store: S, config: VolumeConfig) -> Result<Self, ProtocolError> {
        Volume::attach(store, config)
    }

    fn attach(store: S, config: VolumeConfig) -> Result<Self, ProtocolError> {
        let blocks_per_stripe = config.resolve_width(store.info().stripe_width)?;
        let stripe_count = config.logical_blocks.div_ceil(blocks_per_stripe) as u64;
        Ok(Volume {
            store,
            locks: StripeLockManager::new(),
            block_size: config.block_size,
            logical_blocks: config.logical_blocks,
            base_id: config.base_id,
            stripe_count,
            blocks_per_stripe,
        })
    }

    /// Provisions a zero-filled volume of `logical_blocks` blocks of
    /// `block_size` bytes, using stripe ids starting at `base_id` and
    /// the backend's fixed stripe width.
    ///
    /// # Errors
    /// [`VolumeError::WidthUnknown`] (typed, not a silent default) on
    /// width-free backends — configure those through
    /// [`Volume::with_config`]. Otherwise as [`Volume::with_config`].
    pub fn create(
        store: S,
        base_id: u64,
        block_size: usize,
        logical_blocks: usize,
    ) -> Result<Self, ProtocolError> {
        Volume::with_config(
            store,
            VolumeConfig::new(base_id, block_size, logical_blocks),
        )
    }

    /// The backing store (for fault-injection handles in tests and the
    /// typed extension surface).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of logical blocks.
    pub fn logical_blocks(&self) -> usize {
        self.logical_blocks
    }

    /// Volume capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.logical_blocks * self.block_size
    }

    /// Blocks per stripe after validation.
    pub fn blocks_per_stripe(&self) -> usize {
        self.blocks_per_stripe
    }

    fn locate(&self, lba: usize) -> Result<BlockAddr, ProtocolError> {
        if lba >= self.logical_blocks {
            return Err(ProtocolError::SizeMismatch);
        }
        Ok(BlockAddr::new(
            self.base_id + (lba / self.blocks_per_stripe) as u64,
            lba % self.blocks_per_stripe,
        ))
    }

    /// Reads one logical block.
    ///
    /// # Errors
    /// Out-of-range `lba` or protocol read failure.
    pub fn read_block(&self, lba: usize) -> Result<Vec<u8>, ProtocolError> {
        Ok(self.store.read(self.locate(lba)?)?.bytes)
    }

    /// Writes one logical block (must be exactly `block_size` bytes),
    /// serialised against other writers of the same block.
    ///
    /// # Errors
    /// Out-of-range `lba`, wrong length, or protocol write failure.
    pub fn write_block(&self, lba: usize, data: &[u8]) -> Result<u64, ProtocolError> {
        if data.len() != self.block_size {
            return Err(ProtocolError::SizeMismatch);
        }
        let addr = self.locate(lba)?;
        let _guard = self.locks.lock(addr.stripe, addr.block);
        Ok(self.store.write(addr, data)?.version)
    }

    /// Reads `len` bytes starting at byte `offset`, spanning blocks as
    /// needed.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn read_at(&self, offset: usize, len: usize) -> Result<Vec<u8>, ProtocolError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(len - out.len());
            let block = self.read_block(lba)?;
            out.extend_from_slice(&block[in_block..in_block + take]);
            pos += take;
        }
        Ok(out)
    }

    /// Writes `data` at byte `offset`, spanning blocks; unaligned edges
    /// use read-modify-write under the per-block lock.
    ///
    /// # Errors
    /// Range outside the volume or protocol failure.
    pub fn write_at(&self, offset: usize, data: &[u8]) -> Result<(), ProtocolError> {
        if offset
            .checked_add(data.len())
            .is_none_or(|end| end > self.capacity())
        {
            return Err(ProtocolError::SizeMismatch);
        }
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let lba = pos / self.block_size;
            let in_block = pos % self.block_size;
            let take = (self.block_size - in_block).min(remaining.len());
            let addr = self.locate(lba)?;
            // Hold the (stripe, block) lock across the whole
            // read-modify-write so a concurrent writer of the same block
            // cannot interleave between the read and the write.
            let _guard = self.locks.lock(addr.stripe, addr.block);
            let mut buf = if take == self.block_size {
                vec![0u8; self.block_size]
            } else {
                self.store.read(addr)?.bytes
            };
            buf[in_block..in_block + take].copy_from_slice(&remaining[..take]);
            self.store.write(addr, &buf)?;
            pos += take;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// Scrubs every stripe (anti-entropy through the backend's
    /// [`QuorumStore::scrub`]); returns total node-states refreshed.
    ///
    /// # Errors
    /// Stops at the first stripe that cannot be read back.
    pub fn scrub(&self) -> Result<usize, ProtocolError> {
        let mut refreshed = 0;
        for s in 0..self.stripe_count {
            refreshed += self.store.scrub(self.base_id + s)?.refreshed.len();
        }
        Ok(refreshed)
    }

    /// Rebuilds a replaced node across every stripe of this volume.
    ///
    /// Only TRAP-ERC backends have a node-targeted rebuild (decode from
    /// `k` survivors); on any other backend this returns the typed
    /// [`VolumeError::RebuildUnsupported`](crate::errors::VolumeError)
    /// rather than requiring callers to know the concrete store type —
    /// replication backends heal through [`Volume::scrub`], and sharded
    /// stores rebuild one group at a time via
    /// [`Volume::rebuild_shard_node`].
    ///
    /// # Errors
    /// `RebuildUnsupported` on non-ERC backends; otherwise stops at the
    /// first stripe that cannot be rebuilt.
    pub fn rebuild_node(&self, node: usize) -> Result<Vec<RebuildReport>, ProtocolError> {
        let ids: Vec<u64> = (0..self.stripe_count).map(|s| self.base_id + s).collect();
        self.store.rebuild_node_stripes(&ids, node)
    }
}

impl<S: QuorumStore> Volume<ShardedStore<S>> {
    /// This volume's stripe ids grouped by the shard they route to,
    /// ascending by shard index.
    fn stripes_by_shard(&self) -> Vec<(usize, Vec<u64>)> {
        let mut groups: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for s in 0..self.stripe_count {
            let id = self.base_id + s;
            groups
                .entry(self.store.map().shard_of(id))
                .or_default()
                .push(id);
        }
        groups.into_iter().collect()
    }

    /// Shard-parallel scrub: each shard's stripes are scrubbed on their
    /// own scoped thread (sequentially when the store runs
    /// [`ShardedStore::sequential_batches`]); shards never wait on each
    /// other's anti-entropy. Returns total node-states refreshed.
    ///
    /// # Errors
    /// Propagates the first stripe per shard that cannot be read back.
    pub fn scrub_sharded(&self) -> Result<usize, ProtocolError> {
        let groups = self.stripes_by_shard();
        let scrub_group = |shard: usize, ids: &[u64]| -> Result<usize, ProtocolError> {
            let mut refreshed = 0;
            for &id in ids {
                refreshed += self.store.shard_store(shard).scrub(id)?.refreshed.len();
            }
            Ok(refreshed)
        };
        if self.store.is_parallel() && groups.len() > 1 {
            let scrub_group = &scrub_group;
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(shard, ids)| {
                        let (shard, ids) = (*shard, ids.as_slice());
                        scope.spawn(move || scrub_group(shard, ids))
                    })
                    .collect();
                let mut refreshed = 0;
                for h in handles {
                    refreshed += h.join().expect("shard scrub worker")?;
                }
                Ok(refreshed)
            })
        } else {
            let mut refreshed = 0;
            for (shard, ids) in &groups {
                refreshed += scrub_group(*shard, ids)?;
            }
            Ok(refreshed)
        }
    }
}

impl<S: QuorumStore> Volume<ShardedStore<S>> {
    /// Rebuilds a replaced node of **one shard's** group across this
    /// volume's stripes on that shard — per-shard maintenance; the other
    /// shards keep serving untouched. As with [`Volume::rebuild_node`],
    /// a non-ERC shard backend returns the typed
    /// [`VolumeError::RebuildUnsupported`](crate::errors::VolumeError).
    ///
    /// # Errors
    /// `RebuildUnsupported` on non-ERC shard backends; otherwise stops
    /// at the first stripe that cannot be rebuilt.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn rebuild_shard_node(
        &self,
        shard: usize,
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        let ids: Vec<u64> = self
            .stripes_by_shard()
            .into_iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, ids)| ids)
            .unwrap_or_default();
        self.store
            .shard_store(shard)
            .rebuild_node_stripes(&ids, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::shard::ShardMap;
    use crate::store::Store;
    use crate::trap_erc::TrapErcClient;
    use tq_cluster::{Cluster, LocalTransport};

    fn volume(
        blocks: usize,
        block_size: usize,
    ) -> (Volume<TrapErcClient<LocalTransport>>, Cluster) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let vol = Volume::create(client, 100, block_size, blocks).unwrap();
        (vol, cluster)
    }

    #[test]
    fn geometry() {
        let (vol, _c) = volume(20, 512);
        assert_eq!(vol.block_size(), 512);
        assert_eq!(vol.logical_blocks(), 20);
        assert_eq!(vol.capacity(), 20 * 512);
        // 20 blocks over k = 8 ⇒ 3 stripes.
        assert_eq!(vol.stripe_count, 3);
        assert_eq!(vol.blocks_per_stripe(), 8);
    }

    #[test]
    fn block_io_round_trip() {
        let (vol, _c) = volume(20, 256);
        for lba in [0usize, 7, 8, 19] {
            let data = vec![lba as u8 + 1; 256];
            let v = vol.write_block(lba, &data).unwrap();
            assert_eq!(v, 1);
            assert_eq!(vol.read_block(lba).unwrap(), data);
        }
        // Fresh blocks read as zeros.
        assert!(vol.read_block(9).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn bounds_checked() {
        let (vol, _c) = volume(4, 128);
        assert!(vol.read_block(4).is_err());
        assert!(vol.write_block(4, &[0; 128]).is_err());
        assert!(vol.write_block(0, &[0; 100]).is_err());
        assert!(vol.read_at(4 * 128 - 10, 11).is_err());
        assert!(vol.write_at(usize::MAX, &[1]).is_err());
    }

    #[test]
    fn byte_io_spans_blocks() {
        let (vol, _c) = volume(6, 64);
        // Write 150 bytes starting mid-block: touches blocks 0, 1, 2, 3.
        let payload: Vec<u8> = (0..150).map(|i| i as u8).collect();
        vol.write_at(40, &payload).unwrap();
        assert_eq!(vol.read_at(40, 150).unwrap(), payload);
        // Edges preserved by the read-modify-write.
        assert!(vol.read_at(0, 40).unwrap().iter().all(|&b| b == 0));
        assert!(vol.read_at(190, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn survives_failure_and_rebuild() {
        let (vol, cluster) = volume(16, 128);
        for lba in 0..16 {
            vol.write_block(lba, &[lba as u8 ^ 0x5A; 128]).unwrap();
        }
        // Data node 3 dies and is replaced with blank hardware.
        cluster.replace(3);
        // Reads still work (decode path) ...
        for lba in 0..16 {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 ^ 0x5A; 128]);
        }
        // ... and the rebuild restores direct service on every stripe.
        let reports = vol.rebuild_node(3).unwrap();
        assert_eq!(reports.len(), 2);
        let scrubbed = vol.scrub().unwrap();
        assert_eq!(scrubbed, 2 * 15);
    }

    #[test]
    fn volume_runs_on_any_backend() {
        // The same virtual-disk shape on a replication backend, through
        // a trait object — the store choice is a runtime decision. The
        // width-free backend needs an explicit stripe width.
        let cluster = Cluster::new(5);
        let store = Store::majority(5)
            .transport(LocalTransport::new(cluster.clone()))
            .build()
            .unwrap();
        let vol =
            Volume::with_config(store, VolumeConfig::new(0, 64, 16).blocks_per_stripe(8)).unwrap();
        for lba in [0usize, 7, 15] {
            vol.write_block(lba, &[lba as u8 | 0x80; 64]).unwrap();
        }
        cluster.kill(1);
        cluster.kill(4);
        for lba in [0usize, 7, 15] {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 | 0x80; 64]);
        }
        for n in 0..5 {
            cluster.revive(n);
        }
        assert!(vol.scrub().unwrap() > 0, "stale replicas refreshed");
    }

    #[test]
    fn rebuild_on_non_erc_backend_is_a_typed_error() {
        // A replication-backed volume has no node-targeted rebuild: the
        // caller gets the typed error in-band (no downcasting, no
        // TrapErc-only method), and heals through scrub instead.
        let cluster = Cluster::new(5);
        let store = Store::majority(5)
            .transport(LocalTransport::new(cluster.clone()))
            .build()
            .unwrap();
        let vol =
            Volume::with_config(store, VolumeConfig::new(0, 64, 8).blocks_per_stripe(8)).unwrap();
        let err = vol.rebuild_node(2).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::RebuildUnsupported {
                protocol: "majority"
            })
        ));
        assert!(err.to_string().contains("no node-targeted rebuild"));
        // The sharded per-shard entry point types the same way.
        let shards: Vec<_> = (0..2)
            .map(|_| {
                Store::rowa(3)
                    .transport(LocalTransport::new(Cluster::new(3)))
                    .build_rowa()
                    .unwrap()
            })
            .collect();
        let store = ShardedStore::new(shards, ShardMap::hashed(2).unwrap()).unwrap();
        let vol =
            Volume::with_config(store, VolumeConfig::new(0, 64, 8).blocks_per_stripe(4)).unwrap();
        assert!(matches!(
            vol.rebuild_shard_node(1, 0).unwrap_err(),
            ProtocolError::Volume(VolumeError::RebuildUnsupported { protocol: "rowa" })
        ));
    }

    #[test]
    fn geometry_errors_are_typed() {
        let make_majority = || {
            Store::majority(3)
                .transport(LocalTransport::new(Cluster::new(3)))
                .build()
                .unwrap()
        };
        // No width on a width-free backend: the old silent `8` is gone.
        let err = Volume::create(make_majority(), 0, 64, 16).err().unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::WidthUnknown)
        ));
        // Zero fields.
        let err = Volume::with_config(make_majority(), VolumeConfig::new(0, 0, 16))
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::ZeroBlockSize)
        ));
        let err = Volume::with_config(make_majority(), VolumeConfig::new(0, 64, 0))
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::ZeroBlocks)
        ));
        let err = Volume::with_config(
            make_majority(),
            VolumeConfig::new(0, 64, 16).blocks_per_stripe(0),
        )
        .err()
        .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::ZeroStripeWidth)
        ));
        // Width beyond the replicated object namespace.
        let err = Volume::with_config(
            make_majority(),
            VolumeConfig::new(0, 64, 16).blocks_per_stripe(5000),
        )
        .err()
        .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::WidthOutOfRange {
                configured: 5000,
                ..
            })
        ));
        // Width conflicting with a fixed-width backend.
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let client = TrapErcClient::new(config, LocalTransport::new(Cluster::new(15))).unwrap();
        let err = Volume::with_config(client, VolumeConfig::new(0, 64, 16).blocks_per_stripe(4))
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Volume(VolumeError::WidthMismatch {
                configured: 4,
                backend: 8
            })
        ));
    }

    #[test]
    fn open_attaches_without_reprovisioning() {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client =
            TrapErcClient::new(config.clone(), LocalTransport::new(cluster.clone())).unwrap();
        let vol = Volume::create(client, 50, 64, 16).unwrap();
        vol.write_block(3, &[0xEE; 64]).unwrap();

        // A second client over the same nodes opens the volume and sees
        // the committed state; first-wins creation makes with_config
        // idempotent but `open` issues no creates at all.
        let before = cluster.io_totals().writes;
        let client2 = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let vol2 = Volume::open(client2, VolumeConfig::new(50, 64, 16)).unwrap();
        assert_eq!(cluster.io_totals().writes, before, "open wrote nothing");
        assert_eq!(vol2.read_block(3).unwrap(), vec![0xEE; 64]);
    }

    #[test]
    fn sharded_volume_scrubs_and_rebuilds_per_shard() {
        let clusters: Vec<Cluster> = (0..2).map(|_| Cluster::new(15)).collect();
        let shards: Vec<TrapErcClient<LocalTransport>> = clusters
            .iter()
            .map(|c| {
                TrapErcClient::new(
                    ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap(),
                    LocalTransport::new(c.clone()),
                )
                .unwrap()
            })
            .collect();
        let store = ShardedStore::new(shards, ShardMap::hashed(2).unwrap()).unwrap();
        let vol = Volume::with_config(store, VolumeConfig::new(300, 64, 32)).unwrap();
        for lba in 0..32 {
            vol.write_block(lba, &[lba as u8 ^ 0x3C; 64]).unwrap();
        }

        // Replace node 3 of shard 1's cluster only, rebuild just there.
        clusters[1].replace(3);
        let stripes_on_1 = vol
            .stripes_by_shard()
            .iter()
            .find(|(s, _)| *s == 1)
            .map_or(0, |(_, ids)| ids.len());
        let reports = vol.rebuild_shard_node(1, 3).unwrap();
        assert_eq!(reports.len(), stripes_on_1);

        // Shard-parallel scrub covers all stripes of both shards.
        let refreshed = vol.scrub_sharded().unwrap();
        assert_eq!(refreshed, vol.stripe_count as usize * 15);
        for lba in 0..32 {
            assert_eq!(vol.read_block(lba).unwrap(), vec![lba as u8 ^ 0x3C; 64]);
        }
    }

    #[test]
    fn concurrent_byte_writers_disjoint_ranges() {
        use std::sync::Arc;
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster)).unwrap();
        let vol = Arc::new(Volume::create(client, 7, 64, 16).unwrap());
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let vol = Arc::clone(&vol);
                std::thread::spawn(move || {
                    // Each thread owns a 256-byte range (4 blocks).
                    let base = t * 256;
                    let payload = vec![t as u8 + 1; 256];
                    vol.write_at(base, &payload).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4usize {
            assert_eq!(vol.read_at(t * 256, 256).unwrap(), vec![t as u8 + 1; 256]);
        }
    }
}
