//! The unified, protocol-agnostic store API.
//!
//! The paper's claims are *comparative* — TRAP-ERC vs TRAP-FR vs ROWA vs
//! Majority on cost, availability and storage — so the repo needs one
//! surface that every protocol serves. This module supplies it:
//!
//! * [`QuorumStore`] — the facade trait: `create` / `read` / `write` /
//!   `read_batch` / `write_batch` / `scrub`, implemented by all four
//!   clients and usable as `Box<dyn QuorumStore>`;
//! * [`StoreInfo`] — a static descriptor (n, k, trapezoid shape, storage
//!   overhead) so experiments can label results without downcasting;
//! * [`OpReport`] — per-operation round/message/straggler accounting
//!   sourced from the [`tq_cluster::QuorumRound`] engine, carried by
//!   [`ReadOutcome`]/[`WriteOutcome`] and by the batch results;
//! * [`Store`] + [`StoreBuilder`] — one builder replacing the four
//!   ad-hoc client constructors.
//!
//! Batched operations do **not** loop single ops: each backend fuses the
//! per-level fan-outs of all addressed blocks into one
//! [`tq_cluster::MultiRound`] scatter per level, so a `write_batch` of
//! `m` blocks costs roughly one network round per trapezoid level
//! instead of `m` — compare [`OpReport::network_rounds`] of a batch
//! against a loop, or run `cargo bench --bench batch_ops`.
//!
//! # Example
//!
//! ```
//! use tq_cluster::{Cluster, LocalTransport};
//! use tq_trapezoid::store::{BatchWrite, BlockAddr, QuorumStore, Store};
//!
//! // A (9, 6) TRAP-ERC store on a trapezoid of n-k+1 = 4 nodes.
//! let cluster = Cluster::new(9);
//! let store = Store::trap_erc(9, 6)
//!     .shape(2, 1, 1)
//!     .uniform_w(1)
//!     .transport(LocalTransport::new(cluster.clone()))
//!     .build()
//!     .unwrap();
//! assert_eq!(store.info().protocol, "trap-erc");
//!
//! store
//!     .create(1, (0..6).map(|i| vec![i as u8; 64]).collect())
//!     .unwrap();
//! let w = store.write(BlockAddr::new(1, 2), &[0xAB; 64]).unwrap();
//! assert_eq!(w.version, 1);
//!
//! // Batched writes fuse all blocks' level fan-outs into one scatter
//! // per level: the round count stays flat as the batch grows.
//! let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
//! let items: Vec<BatchWrite> = payloads
//!     .iter()
//!     .enumerate()
//!     .map(|(i, p)| BatchWrite::new(BlockAddr::new(1, i), p))
//!     .collect();
//! let batch = store.write_batch(&items);
//! assert!(batch.outcomes.iter().all(|r| r.is_ok()));
//!
//! // Reads survive the data node's death (decode path).
//! cluster.kill(2);
//! let r = store.read(BlockAddr::new(1, 2)).unwrap();
//! assert_eq!(r.bytes, payloads[2]);
//! assert_eq!(r.version, 2, "the batch superseded the single write");
//! ```

#![deny(missing_docs)]

use tq_cluster::{RoundOutcome, Transport};
use tq_erasure::CodeParams;
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};

use crate::baselines::{MajorityClient, RowaClient};
use crate::config::ProtocolConfig;
use crate::errors::{ProtocolError, VolumeError};
use crate::recovery::RebuildReport;
use crate::trap_erc::{ReadOutcome, ScrubReport, TrapErcClient, WriteOutcome};
use crate::trap_fr::TrapFrClient;

/// Address of one logical block: a stripe and a block index within it.
///
/// For the erasure-coded backend the stripe is a real (n, k) stripe and
/// `block` indexes its data blocks (`0..k`). Replication backends have
/// no stripes; they map each address onto an independent replicated
/// object (`block` must stay below [`OBJECTS_PER_STRIPE`]), which gives
/// all four protocols one namespace for cross-protocol assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddr {
    /// Stripe identifier.
    pub stripe: u64,
    /// Block index within the stripe.
    pub block: usize,
}

impl BlockAddr {
    /// Builds an address.
    pub fn new(stripe: u64, block: usize) -> Self {
        BlockAddr { stripe, block }
    }
}

/// How many block slots a stripe id spans in the replication backends'
/// flattened object namespace (`object id = stripe · SLOTS + block`).
pub const OBJECTS_PER_STRIPE: u64 = 4096;

/// Maps a [`BlockAddr`] onto the replication backends' object namespace.
pub(crate) fn replicated_object_id(addr: BlockAddr) -> Result<u64, ProtocolError> {
    if addr.block as u64 >= OBJECTS_PER_STRIPE {
        return Err(ProtocolError::Misconfigured(
            "block index outside the replicated object namespace",
        ));
    }
    addr.stripe
        .checked_mul(OBJECTS_PER_STRIPE)
        .and_then(|base| base.checked_add(addr.block as u64))
        .ok_or(ProtocolError::Misconfigured(
            "stripe id outside the replicated object namespace",
        ))
}

/// Static description of a store: what protocol it runs and what that
/// costs, for experiment labelling and cross-protocol tables.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreInfo {
    /// Protocol identifier: `"trap-erc"`, `"trap-fr"`, `"rowa"` or
    /// `"majority"`.
    pub protocol: &'static str,
    /// Number of transport nodes the store occupies.
    pub nodes: usize,
    /// Code width n (replication backends: the replica count).
    pub n: usize,
    /// Data blocks per stripe k (replication backends: 1).
    pub k: usize,
    /// Fixed blocks per stripe, if the backend stripes data
    /// (`Some(k)` for TRAP-ERC; `None` where stripes are emulated).
    pub stripe_width: Option<usize>,
    /// Trapezoid `(a, b, h)` for the trapezoid protocols.
    pub shape: Option<(usize, usize, usize)>,
    /// Stored blocks per data block — eq. 14 (`n − k + 1`) for TRAP-FR,
    /// eq. 15 (`n / k`) for TRAP-ERC, `n` for full replication.
    pub storage_overhead: f64,
    /// `true` iff reads may need an erasure decode.
    pub erasure_coded: bool,
}

/// Accounting for one fan-out round (possibly fused over several logical
/// operations), sourced from the [`tq_cluster::QuorumRound`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Trapezoid level the round served, if it was a level round
    /// (auxiliary rounds — direct fetches, decode widening — carry
    /// `None`).
    pub level: Option<usize>,
    /// Logical operations fused into this round (1 for single ops).
    pub ops: usize,
    /// Completions observed (acks + errors); on the lazy sequential
    /// transport this equals the requests actually issued.
    pub sent: usize,
    /// Successful replies.
    pub accepted: usize,
    /// In-band failures (down nodes, guard rejections).
    pub rejected: usize,
    /// Members whose replies were never awaited (stragglers).
    pub abandoned: usize,
    /// Speculative hedge re-issues the transport fired for this round
    /// (zero without an armed health registry).
    pub hedges_fired: usize,
    /// Completions won by the hedge copy arriving first.
    pub hedges_won: usize,
    /// Budgeted retries the round's traffic spent (hedges and other
    /// re-dispatches drawing on the shared [`tq_cluster::RetryBudget`]).
    pub retries_spent: usize,
}

/// Per-operation network accounting: one entry per scatter-gather round
/// the operation issued, in issue order.
///
/// The batched operations' acceptance criterion lives here: a
/// `write_batch` of m blocks reports one *fused* round per trapezoid
/// level ([`RoundStats::ops`] = m), not m independent per-level rounds —
/// `network_rounds()` stays flat as m grows while `messages()` scales.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpReport {
    /// The rounds, in issue order.
    pub rounds: Vec<RoundStats>,
}

impl OpReport {
    /// Number of scatter-gather rounds the operation cost — the
    /// latency-side figure of merit (each round is one concurrent
    /// fan-out on [`tq_cluster::ChannelTransport`]).
    pub fn network_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total completions observed across rounds — the bandwidth-side
    /// figure of merit.
    pub fn messages(&self) -> usize {
        self.rounds.iter().map(|r| r.sent).sum()
    }

    /// Total successful replies.
    pub fn accepted(&self) -> usize {
        self.rounds.iter().map(|r| r.accepted).sum()
    }

    /// Total in-band failures.
    pub fn rejected(&self) -> usize {
        self.rounds.iter().map(|r| r.rejected).sum()
    }

    /// Total abandoned stragglers.
    pub fn stragglers(&self) -> usize {
        self.rounds.iter().map(|r| r.abandoned).sum()
    }

    /// Rounds that served trapezoid level `l`.
    pub fn rounds_at_level(&self, l: usize) -> usize {
        self.rounds.iter().filter(|r| r.level == Some(l)).count()
    }

    /// Total hedge re-issues the operation's rounds fired.
    pub fn hedges_fired(&self) -> usize {
        self.rounds.iter().map(|r| r.hedges_fired).sum()
    }

    /// Total completions won by a hedge copy.
    pub fn hedges_won(&self) -> usize {
        self.rounds.iter().map(|r| r.hedges_won).sum()
    }

    /// Total budgeted retries the operation spent.
    pub fn retries_spent(&self) -> usize {
        self.rounds.iter().map(|r| r.retries_spent).sum()
    }

    /// Records one single-op round.
    pub(crate) fn absorb(&mut self, level: Option<usize>, outcome: &RoundOutcome) {
        self.rounds.push(RoundStats {
            level,
            ops: 1,
            sent: outcome.accepted.len() + outcome.rejected.len(),
            accepted: outcome.accepted.len(),
            rejected: outcome.rejected.len(),
            abandoned: outcome.abandoned.len(),
            hedges_fired: outcome.hedges.fired as usize,
            hedges_won: outcome.hedges.won as usize,
            retries_spent: outcome.hedges.retries as usize,
        });
    }

    /// Records one fused round covering several logical ops.
    pub(crate) fn absorb_fused(&mut self, level: Option<usize>, outcomes: &[RoundOutcome]) {
        if outcomes.is_empty() {
            return;
        }
        let mut stats = RoundStats {
            level,
            ops: outcomes.len(),
            sent: 0,
            accepted: 0,
            rejected: 0,
            abandoned: 0,
            hedges_fired: 0,
            hedges_won: 0,
            retries_spent: 0,
        };
        for o in outcomes {
            stats.sent += o.accepted.len() + o.rejected.len();
            stats.accepted += o.accepted.len();
            stats.rejected += o.rejected.len();
            stats.abandoned += o.abandoned.len();
            // Plan-level hedge totals land on the first op's outcome.
            stats.hedges_fired += o.hedges.fired as usize;
            stats.hedges_won += o.hedges.won as usize;
            stats.retries_spent += o.hedges.retries as usize;
        }
        self.rounds.push(stats);
    }

    /// Records one lone [`Transport::call`] (counts as a round of one).
    pub(crate) fn absorb_call(&mut self, ok: bool) {
        self.rounds.push(RoundStats {
            level: None,
            ops: 1,
            sent: 1,
            accepted: usize::from(ok),
            rejected: usize::from(!ok),
            abandoned: 0,
            hedges_fired: 0,
            hedges_won: 0,
            retries_spent: 0,
        });
    }

    /// Appends another report's rounds (e.g. a write's embedded read).
    pub(crate) fn merge_from(&mut self, other: OpReport) {
        self.rounds.extend(other.rounds);
    }
}

/// One item of a [`QuorumStore::write_batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchWrite<'a> {
    /// Target block.
    pub addr: BlockAddr,
    /// New contents.
    pub bytes: &'a [u8],
}

impl<'a> BatchWrite<'a> {
    /// Builds one batch-write item.
    pub fn new(addr: BlockAddr, bytes: &'a [u8]) -> Self {
        BatchWrite { addr, bytes }
    }
}

/// Result of a [`QuorumStore::read_batch`]: per-item outcomes plus the
/// fused accounting of the whole batch (per-item reports are empty; the
/// rounds were shared, so they live here).
#[derive(Debug, Clone)]
pub struct BatchReads {
    /// One result per requested address, in request order.
    pub outcomes: Vec<Result<ReadOutcome, ProtocolError>>,
    /// Accounting for the fused rounds serving the whole batch.
    pub report: OpReport,
}

impl BatchReads {
    /// `true` iff every item succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|r| r.is_ok())
    }
}

/// Result of a [`QuorumStore::write_batch`]; see [`BatchReads`] for the
/// report convention.
#[derive(Debug, Clone)]
pub struct BatchWrites {
    /// One result per item, in request order.
    pub outcomes: Vec<Result<WriteOutcome, ProtocolError>>,
    /// Accounting for the fused rounds serving the whole batch.
    pub report: OpReport,
}

impl BatchWrites {
    /// `true` iff every item succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|r| r.is_ok())
    }
}

/// The protocol-agnostic store facade.
///
/// One trait served by all four protocol clients ([`TrapErcClient`],
/// [`TrapFrClient`], [`RowaClient`], [`MajorityClient`]), object-safe so
/// experiments can fan over `Vec<Box<dyn QuorumStore>>`. Construct
/// implementations through [`Store`].
pub trait QuorumStore: Send + Sync {
    /// Static descriptor of this store.
    fn info(&self) -> StoreInfo;

    /// Provisions stripe `stripe` with the given data blocks (all nodes
    /// must be live — provisioning sits outside the availability model).
    /// Backends with a fixed [`StoreInfo::stripe_width`] require exactly
    /// that many blocks; replication backends accept any number.
    ///
    /// Creation is **first-wins / idempotent**: the node-level installs
    /// are at-least-once safe, so re-creating a stripe id that already
    /// exists acknowledges without resetting it — the existing blocks
    /// and versions are kept, and `Ok` means "provisioned", not
    /// "reinstalled". Use a fresh stripe id for genuinely new content;
    /// there is no destructive re-create.
    ///
    /// # Errors
    /// [`ProtocolError::SizeMismatch`] on ragged or mis-sized input;
    /// node errors if provisioning could not reach every node.
    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError>;

    /// Reads one block with strict consistency.
    ///
    /// # Errors
    /// Protocol-specific read failures (no quorum, not enough nodes to
    /// decode, missing stripe).
    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError>;

    /// Writes one block with strict consistency.
    ///
    /// # Errors
    /// Protocol-specific write failures (old value unreadable, quorum
    /// not met).
    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError>;

    /// Reads many blocks in fused per-level fan-outs (one scatter per
    /// level for the whole batch, not one per block).
    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads;

    /// Writes many blocks in fused per-level fan-outs. Addresses must be
    /// distinct; a duplicate gets [`ProtocolError::Misconfigured`].
    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites;

    /// Anti-entropy pass over one stripe: pushes the latest readable
    /// state of every block back to all live nodes, refreshing stale
    /// replicas (and, for TRAP-ERC, salvaging poisoned blocks). Must run
    /// quiesced.
    ///
    /// # Errors
    /// Propagates blocks whose current state cannot be read back.
    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError>;

    /// Number of nodes that serve `stripe`. For single-group backends
    /// this is just [`StoreInfo::nodes`]; a sharded store overrides it to
    /// the size of the one shard the stripe routes to, so callers sizing
    /// a per-stripe operation (a scrub's "did every node refresh?" check)
    /// do not mistake the whole federation for one group.
    fn stripe_nodes(&self, stripe: u64) -> usize {
        let _ = stripe;
        self.info().nodes
    }

    /// Rebuilds a replaced node's blocks across the given stripes — the
    /// TRAP-ERC recovery workflow (decode from `k` survivors, re-install
    /// on the blank node). Only the erasure-coded backend can target a
    /// single node this way; the default returns a typed
    /// [`VolumeError::RebuildUnsupported`] so callers on replication
    /// backends (which heal through [`QuorumStore::scrub`]) get an
    /// in-band error instead of needing to know the concrete store type.
    ///
    /// # Errors
    /// [`VolumeError::RebuildUnsupported`] on backends without a
    /// node-targeted rebuild; otherwise the first stripe that cannot be
    /// rebuilt.
    fn rebuild_node_stripes(
        &self,
        ids: &[u64],
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        let _ = (ids, node);
        Err(ProtocolError::Volume(VolumeError::RebuildUnsupported {
            protocol: self.info().protocol,
        }))
    }
}

impl<S: QuorumStore + ?Sized> QuorumStore for Box<S> {
    fn info(&self) -> StoreInfo {
        (**self).info()
    }
    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        (**self).create(stripe, blocks)
    }
    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
        (**self).read(addr)
    }
    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        (**self).write(addr, new)
    }
    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
        (**self).read_batch(addrs)
    }
    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        (**self).write_batch(items)
    }
    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        (**self).scrub(stripe)
    }
    fn stripe_nodes(&self, stripe: u64) -> usize {
        (**self).stripe_nodes(stripe)
    }
    fn rebuild_node_stripes(
        &self,
        ids: &[u64],
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        (**self).rebuild_node_stripes(ids, node)
    }
}

impl<S: QuorumStore + ?Sized> QuorumStore for std::sync::Arc<S> {
    fn info(&self) -> StoreInfo {
        (**self).info()
    }
    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        (**self).create(stripe, blocks)
    }
    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
        (**self).read(addr)
    }
    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        (**self).write(addr, new)
    }
    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
        (**self).read_batch(addrs)
    }
    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        (**self).write_batch(items)
    }
    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        (**self).scrub(stripe)
    }
    fn stripe_nodes(&self, stripe: u64) -> usize {
        (**self).stripe_nodes(stripe)
    }
    fn rebuild_node_stripes(
        &self,
        ids: &[u64],
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        (**self).rebuild_node_stripes(ids, node)
    }
}

// ---------------------------------------------------------------------
// Trait implementations for the four protocol clients.
// ---------------------------------------------------------------------

impl<T: Transport> QuorumStore for TrapErcClient<T> {
    fn info(&self) -> StoreInfo {
        let p = self.config().params();
        let shape = self.config().shape();
        StoreInfo {
            protocol: "trap-erc",
            nodes: p.n(),
            n: p.n(),
            k: p.k(),
            stripe_width: Some(p.k()),
            shape: Some((shape.a(), shape.b(), shape.h())),
            storage_overhead: p.n() as f64 / p.k() as f64,
            erasure_coded: true,
        }
    }
    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        self.create_stripe(stripe, blocks)
    }
    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
        if addr.block >= self.config().params().k() {
            return Err(ProtocolError::Misconfigured(
                "block index outside the stripe",
            ));
        }
        self.read_block(addr.stripe, addr.block)
    }
    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        if addr.block >= self.config().params().k() {
            return Err(ProtocolError::Misconfigured(
                "block index outside the stripe",
            ));
        }
        self.write_block(addr.stripe, addr.block, new)
    }
    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
        self.read_blocks(addrs)
    }
    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        self.write_blocks(items)
    }
    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        self.scrub_stripe(stripe)
    }
    fn rebuild_node_stripes(
        &self,
        ids: &[u64],
        node: usize,
    ) -> Result<Vec<RebuildReport>, ProtocolError> {
        // The inherent method on the client (recovery.rs), not a
        // recursive trait call: inherent methods win resolution.
        TrapErcClient::rebuild_node_stripes(self, ids, node)
    }
}

/// Implements [`QuorumStore`] for a replication client: every method
/// except `info` delegates identically through the flattened object
/// namespace (`replicated_object_id` and the `replicated_*_batch`
/// adapters); the per-protocol `info` body is supplied at expansion.
macro_rules! replicated_quorum_store {
    ($client:ident, |$store:ident| $info:expr) => {
        impl<T: Transport> QuorumStore for $client<T> {
            fn info(&self) -> StoreInfo {
                let $store = self;
                $info
            }
            fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
                let items = replicated_create_items(stripe, &blocks)?;
                self.create_many(&items)
            }
            fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
                self.read(replicated_object_id(addr)?)
            }
            fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
                self.write(replicated_object_id(addr)?, new)
            }
            fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
                replicated_read_batch(addrs, |ids| self.read_many(ids))
            }
            fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
                replicated_write_batch(items, |pairs| self.write_many(pairs))
            }
            fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
                self.repair_stripe_objects(stripe)
            }
        }
    };
}

replicated_quorum_store!(TrapFrClient, |store| {
    let shape = store.shape();
    StoreInfo {
        protocol: "trap-fr",
        nodes: shape.node_count(),
        n: store.stripe_n(),
        k: store.stripe_k(),
        stripe_width: None,
        shape: Some((shape.a(), shape.b(), shape.h())),
        storage_overhead: shape.node_count() as f64,
        erasure_coded: false,
    }
});

replicated_quorum_store!(RowaClient, |store| StoreInfo {
    protocol: "rowa",
    nodes: store.replicas(),
    n: store.replicas(),
    k: 1,
    stripe_width: None,
    shape: None,
    storage_overhead: store.replicas() as f64,
    erasure_coded: false,
});

replicated_quorum_store!(MajorityClient, |store| StoreInfo {
    protocol: "majority",
    nodes: store.replicas(),
    n: store.replicas(),
    k: 1,
    stripe_width: None,
    shape: None,
    storage_overhead: store.replicas() as f64,
    erasure_coded: false,
});

/// Maps stripe-relative creation input to the flattened object
/// namespace, borrowing the payloads (the fused provisioning copies
/// each block into shared [`bytes::Bytes`] exactly once).
fn replicated_create_items(
    stripe: u64,
    blocks: &[Vec<u8>],
) -> Result<Vec<(u64, &[u8])>, ProtocolError> {
    blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Ok((
                replicated_object_id(BlockAddr::new(stripe, i))?,
                b.as_slice(),
            ))
        })
        .collect()
}

/// Batched read through a flattened-namespace backend: invalid
/// addresses fail *per item* (matching the erasure backend); the valid
/// remainder runs as one fused batch.
fn replicated_read_batch(
    addrs: &[BlockAddr],
    read_many: impl FnOnce(&[u64]) -> BatchReads,
) -> BatchReads {
    let mapped: Vec<Result<u64, ProtocolError>> =
        addrs.iter().map(|&a| replicated_object_id(a)).collect();
    let valid: Vec<u64> = mapped
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let batch = read_many(&valid);
    let mut served = batch.outcomes.into_iter();
    BatchReads {
        outcomes: mapped
            .into_iter()
            .map(|r| match r {
                Ok(_) => served.next().expect("one outcome per valid item"),
                Err(e) => Err(e),
            })
            .collect(),
        report: batch.report,
    }
}

/// Batched write through a flattened-namespace backend; see
/// [`replicated_read_batch`] for the per-item error convention.
fn replicated_write_batch(
    items: &[BatchWrite<'_>],
    write_many: impl FnOnce(&[(u64, &[u8])]) -> BatchWrites,
) -> BatchWrites {
    let mapped: Vec<Result<u64, ProtocolError>> = items
        .iter()
        .map(|it| replicated_object_id(it.addr))
        .collect();
    let valid: Vec<(u64, &[u8])> = mapped
        .iter()
        .zip(items)
        .filter_map(|(r, it)| r.as_ref().ok().map(|&id| (id, it.bytes)))
        .collect();
    let batch = write_many(&valid);
    let mut served = batch.outcomes.into_iter();
    BatchWrites {
        outcomes: mapped
            .into_iter()
            .map(|r| match r {
                Ok(_) => served.next().expect("one outcome per valid item"),
                Err(e) => Err(e),
            })
            .collect(),
        report: batch.report,
    }
}

// ---------------------------------------------------------------------
// The builder.
// ---------------------------------------------------------------------

/// Which protocol a [`StoreBuilder`] will construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreKind {
    TrapErc,
    TrapFr,
    Rowa,
    Majority,
}

/// Threshold specification accumulated by the builder.
#[derive(Debug, Clone)]
enum ThresholdSpec {
    /// `w = 1` on every level `≥ 1` (the builder default).
    Default,
    /// One `w` for all levels `≥ 1` (the paper's eq. 16 parameter).
    Uniform(usize),
    /// Explicit per-level thresholds for levels `1..=h`
    /// (`w_0 = ⌊b/2⌋ + 1` is always prepended).
    PerLevel(Vec<usize>),
}

/// Entry points of the unified builder: `Store::<protocol>(..)` starts a
/// [`StoreBuilder`]; chain `.shape(..)`, `.thresholds(..)` /
/// `.uniform_w(..)` and `.transport(..)`, then `.build()` for a
/// `Box<dyn QuorumStore>` or `.build_<protocol>()` for the concrete
/// client. See the [module docs](self) for a worked example.
#[derive(Debug)]
pub struct Store;

impl Store {
    /// A TRAP-ERC store over an (n, k) MDS stripe.
    pub fn trap_erc(n: usize, k: usize) -> StoreBuilder {
        StoreBuilder::new(StoreKind::TrapErc, n, k)
    }

    /// A TRAP-FR store: the same trapezoid over `n − k + 1` full
    /// replicas (the paper's §IV comparison baseline).
    pub fn trap_fr(n: usize, k: usize) -> StoreBuilder {
        StoreBuilder::new(StoreKind::TrapFr, n, k)
    }

    /// A Read-One-Write-All store over `n` replicas.
    pub fn rowa(n: usize) -> StoreBuilder {
        StoreBuilder::new(StoreKind::Rowa, n, 1)
    }

    /// A Majority-quorum store over `n` replicas.
    pub fn majority(n: usize) -> StoreBuilder {
        StoreBuilder::new(StoreKind::Majority, n, 1)
    }

    /// A TRAP-ERC builder preset from an already-validated
    /// [`ProtocolConfig`] (for experiment drivers that sweep configs).
    pub fn from_config(config: ProtocolConfig) -> StoreBuilder {
        let (n, k) = (config.params().n(), config.params().k());
        let mut b = StoreBuilder::new(StoreKind::TrapErc, n, k);
        b.config = Some(config);
        b
    }
}

/// Accumulates a store specification; bind a transport with
/// [`StoreBuilder::transport`] to reach the build step.
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    kind: StoreKind,
    n: usize,
    k: usize,
    shape: Option<(usize, usize, usize)>,
    thresholds: ThresholdSpec,
    config: Option<ProtocolConfig>,
}

impl StoreBuilder {
    fn new(kind: StoreKind, n: usize, k: usize) -> Self {
        StoreBuilder {
            kind,
            n,
            k,
            shape: None,
            thresholds: ThresholdSpec::Default,
            config: None,
        }
    }

    /// Sets the trapezoid `(a, b, h)`. Without it, the builder picks the
    /// first enumerable shape with `n − k + 1` nodes. Ignored by the
    /// replication-only protocols.
    pub fn shape(mut self, a: usize, b: usize, h: usize) -> Self {
        self.shape = Some((a, b, h));
        self
    }

    /// Sets explicit write thresholds for levels `1..=h`
    /// (`w_0 = ⌊b/2⌋ + 1` is always prepended, as eq. 6 requires).
    pub fn thresholds(mut self, w: &[usize]) -> Self {
        self.thresholds = ThresholdSpec::PerLevel(w.to_vec());
        self
    }

    /// Sets the single eq. 16 threshold `w` for every level `≥ 1`.
    pub fn uniform_w(mut self, w: usize) -> Self {
        self.thresholds = ThresholdSpec::Uniform(w);
        self
    }

    /// Binds the transport, enabling the build step.
    pub fn transport<T: Transport>(self, transport: T) -> BoundStoreBuilder<T> {
        BoundStoreBuilder {
            spec: self,
            transport,
        }
    }

    /// Resolves the trapezoid configuration for the trapezoid protocols.
    fn resolve_trapezoid(&self) -> Result<(TrapezoidShape, WriteThresholds), ProtocolError> {
        let shape = match self.shape {
            Some((a, b, h)) => TrapezoidShape::new(a, b, h).map_err(ProtocolError::Shape)?,
            None => {
                let nbnode = self.n.checked_sub(self.k).map(|d| d + 1).unwrap_or(0);
                *TrapezoidShape::with_node_count(nbnode).first().ok_or(
                    ProtocolError::Misconfigured("no trapezoid shape organises n - k + 1 nodes"),
                )?
            }
        };
        let thresholds = match &self.thresholds {
            ThresholdSpec::Default => {
                WriteThresholds::paper_default(&shape, 1).map_err(ProtocolError::Shape)?
            }
            ThresholdSpec::Uniform(w) => {
                WriteThresholds::paper_default(&shape, *w).map_err(ProtocolError::Shape)?
            }
            ThresholdSpec::PerLevel(w) => {
                let mut all = Vec::with_capacity(w.len() + 1);
                all.push(shape.b() / 2 + 1);
                all.extend_from_slice(w);
                WriteThresholds::new(&shape, all).map_err(ProtocolError::Shape)?
            }
        };
        Ok((shape, thresholds))
    }

    /// Resolves the full TRAP-ERC configuration.
    fn resolve_config(&self) -> Result<ProtocolConfig, ProtocolError> {
        if let Some(config) = &self.config {
            return Ok(config.clone());
        }
        let params = CodeParams::new(self.n, self.k).map_err(ProtocolError::Params)?;
        let (shape, thresholds) = self.resolve_trapezoid()?;
        ProtocolConfig::new(params, shape, thresholds)
    }
}

/// A [`StoreBuilder`] with its transport bound: ready to build.
#[derive(Debug)]
pub struct BoundStoreBuilder<T: Transport> {
    spec: StoreBuilder,
    transport: T,
}

impl<T: Transport + 'static> BoundStoreBuilder<T> {
    /// Builds the store as a protocol-agnostic trait object.
    ///
    /// # Errors
    /// Parameter/shape validation failures; a transport smaller than the
    /// protocol needs.
    pub fn build(self) -> Result<Box<dyn QuorumStore>, ProtocolError> {
        match self.spec.kind {
            StoreKind::TrapErc => Ok(Box::new(self.build_trap_erc()?)),
            StoreKind::TrapFr => Ok(Box::new(self.build_trap_fr()?)),
            StoreKind::Rowa => Ok(Box::new(self.build_rowa()?)),
            StoreKind::Majority => Ok(Box::new(self.build_majority()?)),
        }
    }
}

impl<T: Transport> BoundStoreBuilder<T> {
    /// Builds the concrete TRAP-ERC client (needed for the typed
    /// extension surface: hinted writes, rebuilds, codec access).
    ///
    /// # Errors
    /// As [`BoundStoreBuilder::build`]; additionally
    /// [`ProtocolError::Misconfigured`] if the builder was started for a
    /// different protocol.
    pub fn build_trap_erc(self) -> Result<TrapErcClient<T>, ProtocolError> {
        if self.spec.kind != StoreKind::TrapErc {
            return Err(ProtocolError::Misconfigured(
                "builder was configured for a different protocol",
            ));
        }
        TrapErcClient::new(self.spec.resolve_config()?, self.transport)
    }

    /// Builds the concrete TRAP-FR client.
    ///
    /// # Errors
    /// See [`BoundStoreBuilder::build_trap_erc`].
    pub fn build_trap_fr(self) -> Result<TrapFrClient<T>, ProtocolError> {
        if self.spec.kind != StoreKind::TrapFr {
            return Err(ProtocolError::Misconfigured(
                "builder was configured for a different protocol",
            ));
        }
        let (shape, thresholds) = self.spec.resolve_trapezoid()?;
        TrapFrClient::with_stripe(shape, thresholds, self.spec.n, self.spec.k, self.transport)
    }

    /// Builds the concrete ROWA client.
    ///
    /// # Errors
    /// See [`BoundStoreBuilder::build_trap_erc`].
    pub fn build_rowa(self) -> Result<RowaClient<T>, ProtocolError> {
        if self.spec.kind != StoreKind::Rowa {
            return Err(ProtocolError::Misconfigured(
                "builder was configured for a different protocol",
            ));
        }
        RowaClient::new(self.spec.n, self.transport)
    }

    /// Builds the concrete Majority client.
    ///
    /// # Errors
    /// See [`BoundStoreBuilder::build_trap_erc`].
    pub fn build_majority(self) -> Result<MajorityClient<T>, ProtocolError> {
        if self.spec.kind != StoreKind::Majority {
            return Err(ProtocolError::Misconfigured(
                "builder was configured for a different protocol",
            ));
        }
        MajorityClient::new(self.spec.n, self.transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    fn transport(n: usize) -> LocalTransport {
        LocalTransport::new(Cluster::new(n))
    }

    #[test]
    fn builder_constructs_all_four_protocols() {
        let erc = Store::trap_erc(15, 8)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(transport(15))
            .build()
            .unwrap();
        assert_eq!(erc.info().protocol, "trap-erc");
        assert_eq!(erc.info().stripe_width, Some(8));
        assert!((erc.info().storage_overhead - 15.0 / 8.0).abs() < 1e-12);

        let fr = Store::trap_fr(15, 8)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(transport(15))
            .build()
            .unwrap();
        assert_eq!(fr.info().protocol, "trap-fr");
        assert_eq!(fr.info().nodes, 8);
        assert!((fr.info().storage_overhead - 8.0).abs() < 1e-12);

        let rowa = Store::rowa(5).transport(transport(5)).build().unwrap();
        assert_eq!(rowa.info().protocol, "rowa");
        let majority = Store::majority(5).transport(transport(5)).build().unwrap();
        assert_eq!(majority.info().protocol, "majority");
        assert_eq!(majority.info().nodes, 5);
    }

    #[test]
    fn builder_defaults_shape_and_thresholds() {
        // No shape given: the builder picks one with n - k + 1 nodes.
        let erc = Store::trap_erc(9, 6)
            .transport(transport(9))
            .build_trap_erc()
            .unwrap();
        assert_eq!(erc.config().shape().node_count(), 4);
        assert_eq!(
            erc.config().thresholds().as_slice()[0],
            erc.config().shape().b() / 2 + 1
        );
    }

    #[test]
    fn builder_explicit_thresholds_prepend_w0() {
        let erc = Store::trap_erc(15, 8)
            .shape(0, 4, 1)
            .thresholds(&[2])
            .transport(transport(15))
            .build_trap_erc()
            .unwrap();
        assert_eq!(erc.config().thresholds().as_slice(), &[3, 2]);
    }

    #[test]
    fn builder_rejects_protocol_mismatch_and_bad_params() {
        let err = Store::rowa(5)
            .transport(transport(5))
            .build_trap_erc()
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Misconfigured(_)));
        assert!(Store::trap_erc(3, 5)
            .transport(transport(5))
            .build()
            .is_err());
        assert!(Store::trap_erc(9, 6)
            .shape(2, 3, 2)
            .transport(transport(9))
            .build()
            .is_err());
    }

    #[test]
    fn builder_invalid_shape_yields_typed_shape_errors() {
        use tq_quorum::trapezoid::ShapeError;
        // b = 0: no level-0 members.
        let err = Store::trap_erc(9, 6)
            .shape(2, 0, 1)
            .transport(transport(9))
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Shape(ShapeError::EmptyBaseLevel)
        ));
        // Shape organises the wrong node count for the stripe.
        let err = Store::trap_erc(9, 6)
            .shape(2, 3, 2)
            .transport(transport(15))
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Shape(ShapeError::StripeMismatch {
                node_count: 15,
                expected: 4
            })
        ));
        // Threshold above a level's size.
        let err = Store::trap_fr(9, 6)
            .shape(2, 1, 1)
            .uniform_w(7)
            .transport(transport(9))
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Shape(ShapeError::ThresholdOutOfRange { .. })
        ));
        // Explicit w_0 below the level-0 majority.
        let err = Store::trap_erc(15, 8)
            .shape(0, 4, 1)
            .thresholds(&[2])
            .transport(transport(15));
        assert!(err.build().is_ok(), "w_0 is prepended, not user-supplied");
        let err = Store::trap_erc(15, 8)
            .shape(0, 4, 1)
            .thresholds(&[2, 9])
            .transport(transport(15))
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Shape(ShapeError::WrongThresholdCount { .. })
        ));
    }

    #[test]
    fn builder_k_exceeding_n_yields_typed_param_errors() {
        let err = Store::trap_erc(3, 5)
            .transport(transport(5))
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, ProtocolError::Params(_)), "got {err:?}");
        // TRAP-FR has no code parameters; k > n surfaces as the
        // impossible n − k + 1 trapezoid instead.
        let err = Store::trap_fr(3, 5)
            .shape(0, 1, 0)
            .transport(transport(5))
            .build()
            .err()
            .unwrap();
        assert!(
            matches!(err, ProtocolError::Misconfigured(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn builder_zero_height_trapezoid_is_typed_not_a_panic() {
        // h = 0 is legal when the single level covers n − k + 1 nodes…
        let ok = Store::trap_erc(9, 6)
            .shape(0, 4, 0)
            .transport(transport(9))
            .build();
        assert!(ok.is_ok(), "single-level trapezoid of matching width");
        // …and a typed mismatch otherwise (never a panic).
        let err = Store::trap_erc(9, 6)
            .shape(0, 1, 0)
            .transport(transport(9))
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ProtocolError::Shape(tq_quorum::trapezoid::ShapeError::StripeMismatch {
                node_count: 1,
                expected: 4
            })
        ));
    }

    #[test]
    fn builder_undersized_transport_is_a_typed_error() {
        let err = Store::rowa(5)
            .transport(transport(3))
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, ProtocolError::Node(_)));
        let err = Store::majority(0)
            .transport(transport(1))
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, ProtocolError::Node(_)));
    }

    #[test]
    fn replicated_namespace_bounds_block_index() {
        assert!(replicated_object_id(BlockAddr::new(1, OBJECTS_PER_STRIPE as usize)).is_err());
        assert_eq!(
            replicated_object_id(BlockAddr::new(2, 3)).unwrap(),
            2 * OBJECTS_PER_STRIPE + 3
        );
    }

    #[test]
    fn op_report_accounting() {
        let mut report = OpReport::default();
        report.absorb_call(true);
        report.absorb_call(false);
        assert_eq!(report.network_rounds(), 2);
        assert_eq!(report.messages(), 2);
        assert_eq!(report.accepted(), 1);
        assert_eq!(report.rejected(), 1);
        let mut other = OpReport::default();
        other.absorb_call(true);
        report.merge_from(other);
        assert_eq!(report.network_rounds(), 3);
    }
}
