//! Protocol-level errors.

use core::fmt;

use tq_cluster::NodeError;
use tq_erasure::{CodeError, ParamError};
use tq_quorum::trapezoid::ShapeError;

/// Failure of a TRAP-ERC / TRAP-FR protocol operation.
///
/// The variants mirror the paper's failure points: Algorithm 1 returns
/// FAIL when a level validates fewer than `w_l` writes; Algorithm 2
/// returns ∅ when no level completes its version check or when fewer than
/// `k` consistent nodes exist for a decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Algorithm 1 lines 35–37: level `level` validated only `achieved`
    /// of the required `w_l = needed` writes.
    WriteQuorumNotMet {
        /// Level that failed.
        level: usize,
        /// Required `w_l`.
        needed: usize,
        /// Writes actually validated.
        achieved: usize,
    },
    /// Algorithm 1 line 15: the embedded READBLOCK for the old chunk
    /// failed, so the parity deltas cannot be computed.
    OldValueUnreadable(Box<ProtocolError>),
    /// Algorithm 2 line 39: no level assembled `r_l` live members, so the
    /// latest version cannot be established.
    VersionCheckFailed,
    /// Algorithm 2 Case 2: fewer than `k` mutually-consistent live nodes
    /// hold the latest version — the decode cannot proceed.
    NotEnoughForDecode {
        /// `k`, the number required.
        needed: usize,
        /// Consistent live nodes found.
        found: usize,
    },
    /// Integrity mode: corrupt shards were detected (checksum mismatch
    /// against the stripe's cross-checksum vector, or a node-side
    /// self-check failure) and routing around them left fewer than `k`
    /// clean shards. Unlike [`NotEnoughForDecode`](Self::NotEnoughForDecode)
    /// this is a *detected corruption* verdict: the read refused to
    /// return bytes it could not vouch for, rather than decoding garbage.
    Integrity {
        /// `k`, the number of clean shards required.
        needed: usize,
        /// Clean, mutually-consistent shards that remained.
        clean: usize,
        /// Stripe indices of nodes that served provably corrupt bytes
        /// (client-side checksum mismatch or a node-reported
        /// [`NodeError::Corrupt`]).
        corrupt: Vec<usize>,
    },
    /// The object was never created on the contacted nodes.
    StripeMissing,
    /// Block length differed from the stripe's.
    SizeMismatch,
    /// Parameter validation failure (construction time).
    Params(ParamError),
    /// Shape/threshold validation failure (construction time).
    Shape(ShapeError),
    /// Codec failure bubbled up from `tq-erasure`.
    Code(CodeError),
    /// A node/transport error that was fatal for the operation (most
    /// node errors are absorbed by quorum logic; this surfaces the ones
    /// that are not, e.g. `TransportClosed` during stripe creation).
    Node(NodeError),
    /// The store API was used inconsistently (builder protocol mismatch,
    /// duplicate batch addresses, out-of-range block index).
    Misconfigured(&'static str),
    /// Volume geometry validation failure (construction time).
    Volume(VolumeError),
}

/// Invalid [`crate::volume::VolumeConfig`] geometry (caught before any
/// stripe is provisioned) or a maintenance operation the volume's
/// backend does not support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeError {
    /// `block_size` was zero.
    ZeroBlockSize,
    /// `logical_blocks` was zero.
    ZeroBlocks,
    /// `blocks_per_stripe` was zero.
    ZeroStripeWidth,
    /// The backend stripes data at a fixed width and the configured
    /// `blocks_per_stripe` differs from it.
    WidthMismatch {
        /// The configured `blocks_per_stripe`.
        configured: usize,
        /// The backend's fixed stripe width.
        backend: usize,
    },
    /// The backend is width-free (replication) and no explicit
    /// `blocks_per_stripe` was supplied — there is no width to derive.
    WidthUnknown,
    /// `blocks_per_stripe` exceeds the replicated object namespace
    /// ([`crate::store::OBJECTS_PER_STRIPE`] slots per stripe id).
    WidthOutOfRange {
        /// The configured `blocks_per_stripe`.
        configured: usize,
        /// The largest representable width.
        max: usize,
    },
    /// The backend has no node-targeted rebuild workflow. Only TRAP-ERC
    /// reconstructs a replaced node's blocks from the surviving stripe
    /// (`k`-of-`n` decode); the replication backends re-install stale or
    /// wiped replicas through `scrub` instead, and a sharded store
    /// rebuilds per shard (`Volume::rebuild_shard_node`).
    RebuildUnsupported {
        /// The backend's protocol label ([`crate::store::StoreInfo::protocol`]).
        protocol: &'static str,
    },
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::ZeroBlockSize => write!(f, "block_size must be positive"),
            VolumeError::ZeroBlocks => write!(f, "volume needs at least one logical block"),
            VolumeError::ZeroStripeWidth => write!(f, "blocks_per_stripe must be positive"),
            VolumeError::WidthMismatch {
                configured,
                backend,
            } => write!(
                f,
                "blocks_per_stripe {configured} differs from the backend's fixed stripe width {backend}"
            ),
            VolumeError::WidthUnknown => write!(
                f,
                "backend has no fixed stripe width; blocks_per_stripe must be configured explicitly"
            ),
            VolumeError::WidthOutOfRange { configured, max } => write!(
                f,
                "blocks_per_stripe {configured} exceeds the {max}-slot object namespace"
            ),
            VolumeError::RebuildUnsupported { protocol } => write!(
                f,
                "{protocol} has no node-targeted rebuild; heal replicas through scrub"
            ),
        }
    }
}

impl std::error::Error for VolumeError {}

impl From<VolumeError> for ProtocolError {
    fn from(e: VolumeError) -> Self {
        ProtocolError::Volume(e)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::WriteQuorumNotMet {
                level,
                needed,
                achieved,
            } => write!(
                f,
                "write failed: level {level} validated {achieved}/{needed} nodes"
            ),
            ProtocolError::OldValueUnreadable(inner) => {
                write!(f, "write failed: old value unreadable ({inner})")
            }
            ProtocolError::VersionCheckFailed => {
                write!(f, "read failed: no level completed its version check")
            }
            ProtocolError::NotEnoughForDecode { needed, found } => write!(
                f,
                "read failed: {found} consistent nodes, {needed} needed to decode"
            ),
            ProtocolError::Integrity {
                needed,
                clean,
                corrupt,
            } => write!(
                f,
                "read refused: corrupt shards detected on nodes {corrupt:?}, \
                 only {clean} clean shards remain of the {needed} needed"
            ),
            ProtocolError::StripeMissing => write!(f, "stripe not present on nodes"),
            ProtocolError::SizeMismatch => write!(f, "block length differs from stripe"),
            ProtocolError::Params(e) => write!(f, "invalid code parameters: {e}"),
            ProtocolError::Shape(e) => write!(f, "invalid trapezoid: {e}"),
            ProtocolError::Code(e) => write!(f, "codec error: {e}"),
            ProtocolError::Node(e) => write!(f, "node error: {e}"),
            ProtocolError::Misconfigured(what) => write!(f, "store misuse: {what}"),
            ProtocolError::Volume(e) => write!(f, "invalid volume geometry: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    /// Chains to the wrapped failure so `anyhow`-style error walks (and
    /// the DST failure minimization output) surface the root cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::OldValueUnreadable(inner) => Some(inner.as_ref()),
            ProtocolError::Params(e) => Some(e),
            ProtocolError::Shape(e) => Some(e),
            ProtocolError::Code(e) => Some(e),
            ProtocolError::Node(e) => Some(e),
            ProtocolError::Volume(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for ProtocolError {
    fn from(e: CodeError) -> Self {
        ProtocolError::Code(e)
    }
}

impl From<ParamError> for ProtocolError {
    fn from(e: ParamError) -> Self {
        ProtocolError::Params(e)
    }
}

impl From<ShapeError> for ProtocolError {
    fn from(e: ShapeError) -> Self {
        ProtocolError::Shape(e)
    }
}

impl From<NodeError> for ProtocolError {
    fn from(e: NodeError) -> Self {
        ProtocolError::Node(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ProtocolError::WriteQuorumNotMet {
            level: 1,
            needed: 2,
            achieved: 1,
        };
        assert_eq!(e.to_string(), "write failed: level 1 validated 1/2 nodes");
        let e = ProtocolError::OldValueUnreadable(Box::new(ProtocolError::VersionCheckFailed));
        assert!(e.to_string().contains("old value unreadable"));
        assert!(ProtocolError::NotEnoughForDecode {
            needed: 6,
            found: 4
        }
        .to_string()
        .contains("4 consistent nodes"));
        let e = ProtocolError::Integrity {
            needed: 6,
            clean: 4,
            corrupt: vec![2, 7],
        };
        assert!(e.to_string().contains("corrupt shards detected"));
        assert!(e.to_string().contains("[2, 7]"));
    }

    #[test]
    fn code_error_converts() {
        let e: ProtocolError = CodeError::ShardSizeMismatch.into();
        assert!(matches!(
            e,
            ProtocolError::Code(CodeError::ShardSizeMismatch)
        ));
        let e: ProtocolError = NodeError::NotFound.into();
        assert!(matches!(e, ProtocolError::Node(NodeError::NotFound)));
    }

    #[test]
    fn sources_chain_to_the_root_cause() {
        use std::error::Error as _;
        let leaf = ProtocolError::Node(NodeError::TimedOut);
        let wrapped = ProtocolError::OldValueUnreadable(Box::new(leaf));
        let inner = wrapped.source().expect("wrapped error has a source");
        assert!(inner.to_string().contains("node error"));
        let root = inner
            .source()
            .expect("protocol error chains to the node error");
        assert_eq!(root.to_string(), NodeError::TimedOut.to_string());
        assert!(ProtocolError::VersionCheckFailed.source().is_none());
    }
}
