//! Guarded-write overhead: the idempotent command path vs the old
//! unconditional write.
//!
//! The node command API made every mutation conditional: `WriteData`
//! compares-and-advances the stored version, and the enveloped
//! [`NodeApi`] entry point additionally consults (and updates) the
//! applied-op window keyed by [`OpId`]. This bench prices that guard
//! against the seed's unconditional write path — reproduced here as a
//! minimal baseline struct (version store + `copy_from_slice`, no guard,
//! no window) — at two granularities:
//!
//! * raw node writes (per-call cost of guard + window bookkeeping);
//! * a whole TRAP-ERC `write_block` over a [`ChannelTransport`] with
//!   400µs injected per-node latency, where the guard must disappear
//!   into the network budget (expected overhead well under 5%).
//!
//! A summary table is printed at start-up (the repo's bench style:
//! artefact rows first, measurements after).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use tq_cluster::rpc::NodeApi;
use tq_cluster::{ChannelTransport, Cluster, Envelope, NodeId, Request, StorageNode};
use tq_trapezoid::{ProtocolConfig, TrapErcClient};

const BLOCK: usize = 1024;
const NODE_DELAY: Duration = Duration::from_micros(400);

/// The seed's write path, reconstructed: versioned blocks overwritten
/// unconditionally — no monotone guard, no envelope, no applied-op
/// window. The reference the guarded path is priced against.
struct UnguardedNode {
    blocks: HashMap<u64, (u64, Vec<u8>)>,
}

impl UnguardedNode {
    fn new() -> Self {
        UnguardedNode {
            blocks: HashMap::new(),
        }
    }
    fn init(&mut self, id: u64, bytes: &[u8]) {
        self.blocks.insert(id, (0, bytes.to_vec()));
    }
    fn write(&mut self, id: u64, bytes: &[u8], version: u64) {
        let (stored_version, stored) = self.blocks.get_mut(&id).expect("initialised");
        stored.copy_from_slice(bytes);
        *stored_version = version;
    }
}

fn time<R>(mut f: impl FnMut() -> R, reps: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps
}

fn print_overhead_summary() {
    let reps = 20_000u32;
    let payload = Bytes::from(vec![0xA5u8; BLOCK]);

    let mut raw = UnguardedNode::new();
    raw.init(1, &payload);
    let mut v = 0u64;
    let unguarded = time(
        || {
            v += 1;
            raw.write(1, &payload, v);
        },
        reps,
    );

    let node = StorageNode::new(NodeId(0));
    node.handle(Request::InitData {
        id: 1,
        bytes: payload.clone(),
    })
    .unwrap();
    let mut v = 0u64;
    let guarded = time(
        || {
            v += 1;
            let reply = node.execute(Envelope::new(Request::WriteData {
                id: 1,
                bytes: payload.clone(),
                version: v,
            }));
            assert!(reply.result.is_ok());
        },
        reps,
    );

    let delta = guarded.saturating_sub(unguarded);
    let vs_node = delta.as_secs_f64() / NODE_DELAY.as_secs_f64() * 100.0;
    eprintln!("# write_guard — {BLOCK}-byte block, {reps} reps");
    eprintln!("# path                per-write");
    eprintln!("# unconditional (seed) {unguarded:>9.2?}");
    eprintln!("# guarded envelope     {guarded:>9.2?}");
    eprintln!(
        "# guard cost           {delta:>9.2?}  = {vs_node:.3}% of a {NODE_DELAY:?} node budget"
    );
    assert!(
        vs_node < 5.0,
        "guard overhead {vs_node:.2}% exceeds the 5% budget at {NODE_DELAY:?}/node"
    );
}

fn bench_node_write_paths(c: &mut Criterion) {
    print_overhead_summary();

    let payload = Bytes::from(vec![0x5Au8; BLOCK]);
    let mut group = c.benchmark_group("write_guard/node");

    group.bench_function("unconditional_baseline", |b| {
        let mut raw = UnguardedNode::new();
        raw.init(1, &payload);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            raw.write(1, &payload, v);
        })
    });

    group.bench_function("guarded_handle", |b| {
        let node = StorageNode::new(NodeId(0));
        node.handle(Request::InitData {
            id: 1,
            bytes: payload.clone(),
        })
        .unwrap();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            node.handle(Request::WriteData {
                id: 1,
                bytes: payload.clone(),
                version: v,
            })
            .unwrap()
        })
    });

    group.bench_function("guarded_envelope", |b| {
        let node = StorageNode::new(NodeId(0));
        node.handle(Request::InitData {
            id: 1,
            bytes: payload.clone(),
        })
        .unwrap();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            node.execute(Envelope::new(Request::WriteData {
                id: 1,
                bytes: payload.clone(),
                version: v,
            }))
        })
    });

    // The idempotent no-op paths redeliveries take: a stale version and
    // an exact op-id replay. Both must be at least as cheap as a write.
    group.bench_function("stale_version_ack", |b| {
        let node = StorageNode::new(NodeId(0));
        node.handle(Request::InitData {
            id: 1,
            bytes: payload.clone(),
        })
        .unwrap();
        node.handle(Request::WriteData {
            id: 1,
            bytes: payload.clone(),
            version: 1_000_000,
        })
        .unwrap();
        b.iter(|| {
            node.execute(Envelope::new(Request::WriteData {
                id: 1,
                bytes: payload.clone(),
                version: 1,
            }))
        })
    });

    group.bench_function("replayed_op_ack", |b| {
        let node = StorageNode::new(NodeId(0));
        node.handle(Request::InitData {
            id: 1,
            bytes: payload.clone(),
        })
        .unwrap();
        let env = Envelope::new(Request::WriteData {
            id: 1,
            bytes: payload.clone(),
            version: 1,
        });
        node.execute(env.clone());
        b.iter(|| node.execute(env.clone()))
    });

    group.finish();
}

fn bench_protocol_write(c: &mut Criterion) {
    // Whole-operation scale: at 400µs per node the guard is noise — the
    // write's cost is the two await-all levels of round trips.
    let mut group = c.benchmark_group("write_guard/protocol");
    group.sample_size(20);

    let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).expect("static parameters");
    let transport = ChannelTransport::with_latency(Cluster::new(15), &[NODE_DELAY; 15]);
    let client = TrapErcClient::new(config, transport).expect("sized transport");
    let blocks: Vec<Vec<u8>> = (0..8)
        .map(|i| (0..BLOCK).map(|b| (i * 13 + b) as u8).collect())
        .collect();
    client.create_stripe(1, blocks).expect("all nodes up");

    let old = vec![0u8; BLOCK];
    let new = vec![0xA5u8; BLOCK];
    let mut version = 0u64;
    group.bench_function("write_block_400us_node", |b| {
        b.iter(|| {
            let out = client
                .write_block_with_hint(1, 0, &new, if version == 0 { &old } else { &new }, version)
                .expect("healthy cluster");
            version = out.version;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_node_write_paths, bench_protocol_write);
criterion_main!(benches);
