//! Figure 3 — read availability of TRAP-ERC vs TRAP-FR.
//!
//! Prints the figure's rows at start-up, then measures the closed forms
//! (eqs. 10 and 13), the exact 2^15 enumeration, and single protocol
//! read operations on both the direct and the decode path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tq_bench::provisioned;
use tq_quorum::availability;
use tq_quorum::exact::exact_availability;
use tq_quorum::system::QuorumSystem;
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use tq_sim::{experiments, report};

fn print_figure() {
    let fig = experiments::fig3_read_availability(10, 400, 0xF17);
    eprintln!("{}", report::to_markdown(&fig));
}

fn bench_closed_forms(c: &mut Criterion) {
    print_figure();
    let shape = TrapezoidShape::new(0, 4, 1).expect("static shape");
    let th = WriteThresholds::paper_default(&shape, 2).expect("valid");
    let mut group = c.benchmark_group("fig3/closed_forms_101pt_sweep");
    group.bench_function("eq10_fr", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..=100 {
                acc += availability::read_availability_fr(black_box(&shape), &th, i as f64 / 100.0);
            }
            acc
        })
    });
    group.bench_function("eq13_erc", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..=100 {
                acc += availability::read_availability_erc(
                    black_box(&shape),
                    &th,
                    15,
                    8,
                    i as f64 / 100.0,
                );
            }
            acc
        })
    });
    group.finish();
}

fn bench_exact_enumeration(c: &mut Criterion) {
    let config = tq_bench::paper_config();
    let sys = config.system_for_block(0);
    let mut group = c.benchmark_group("fig3/exact_2pow15_enumeration");
    group.sample_size(20);
    group.bench_function("erc_read_predicate", |b| {
        b.iter(|| exact_availability(15, black_box(0.5), |up| sys.is_read_available(up)))
    });
    group.finish();
}

fn bench_protocol_read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/protocol_read_op");
    for block_len in [512usize, 4096] {
        let (cluster, client) = provisioned(block_len);
        group.bench_with_input(BenchmarkId::new("direct", block_len), &block_len, |b, _| {
            b.iter(|| client.read_block(1, 0).expect("direct path"))
        });
        cluster.kill(0);
        group.bench_with_input(BenchmarkId::new("decode", block_len), &block_len, |b, _| {
            b.iter(|| client.read_block(1, 0).expect("decode path"))
        });
        cluster.revive(0);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_closed_forms,
    bench_exact_enumeration,
    bench_protocol_read_paths
);
criterion_main!(benches);
