//! End-to-end open-loop tail-latency bench over the sharded data plane.
//!
//! For each shard count `S`, builds `S` independent (n, k) TRAP-ERC
//! groups — each with its own simulated cluster and thread-per-node
//! `ChannelTransport` — behind one [`ShardedStore`] router, provisions
//! the full logical block space at zero latency, then injects a fixed
//! per-node service delay so capacity is governed by node service time
//! (the regime the paper's protocols live in), not host CPU count.
//!
//! Two phases per shard count:
//!
//! 1. **Saturation probe** (closed loop): a client pool sized to the
//!    plane's capacity hammers zipfian-keyed ops as fast as they
//!    complete; completed ops / wall clock is the saturation throughput.
//! 2. **Open loop**: Poisson arrivals at 70 % of measured saturation,
//!    zipfian key choice, 70/30 read/write mix. Latency is measured
//!    from *scheduled arrival* to completion, so queueing delay counts —
//!    the honest tail. p50/p99/p999 come from the full sorted sample.
//!
//! Writes take the sharded [`StripeLockManager`] per-block lock, so the
//! hot key's writers serialise (write-write safety) while everything
//! else proceeds — the data plane's intended hot path.
//!
//! Results go to stdout and, via `TQ_BENCH_JSON`, to the machine-
//! readable report (`BENCH_e2e.json` at the repo root): per shard count
//! a `saturation` row (elements_per_sec) and `p50`/`p99`/`p999` rows in
//! nanoseconds. `TQ_E2E_SCALE=smoke` selects the reduced CI scale.
//!
//! `TQ_E2E_STRAGGLER=1` switches to the straggler axis instead: one
//! gray node per group (node 0 at 30× service time), unhedged vs hedged
//! at the same offered rate, reported under `hedge/straggler/…`
//! (`BENCH_hedge.json` is the committed artefact — run with
//! `TQ_BENCH_JSON=BENCH_hedge.json`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Throughput;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tq_cluster::{ChannelTransport, Cluster, HedgeCounters, HedgePolicy};
use tq_trapezoid::{BlockAddr, QuorumStore, ShardMap, ShardedStore, Store, StripeLockManager};

/// First stripe id of the provisioned volume.
const BASE_ID: u64 = 1;
/// Payload bytes per logical block.
const VALUE_LEN: usize = 64;
/// Fraction of ops that are reads.
const READ_FRACTION: f64 = 0.70;
/// Open-loop offered load as a fraction of measured saturation.
const LOAD_FACTOR: f64 = 0.70;
/// Zipfian skew (YCSB's default).
const ZIPF_THETA: f64 = 0.99;

/// One benchmark scale: full (the committed artefact) or smoke (CI).
struct Scale {
    label: &'static str,
    shard_counts: &'static [usize],
    /// Nodes per trapezoid group (the TRAP-ERC `n`).
    group_nodes: usize,
    /// Data blocks per stripe (the TRAP-ERC `k`).
    group_k: usize,
    /// Logical blocks across the whole plane (rounded up to stripes).
    blocks: usize,
    /// Injected per-node service delay.
    node_delay: Duration,
    /// Closed-loop clients per shard for the saturation probe.
    clients_per_shard: usize,
    saturation_ms: u64,
    open_loop_ms: u64,
    /// Shard (= group) count for the straggler axis.
    straggler_shards: usize,
}

const FULL: Scale = Scale {
    label: "full",
    shard_counts: &[1, 2, 4, 8],
    group_nodes: 9,
    group_k: 6,
    blocks: 1_000_000,
    // Large enough that the per-node service sleep, not host scheduling
    // jitter across the ~170 threads of the 8-shard configuration,
    // dominates each round trip — the regime where shard scaling
    // measures the data plane rather than the OS scheduler. (On a
    // single-core builder the 8-shard point is still wake-up-latency
    // bound; multi-core hosts report higher ratios.)
    node_delay: Duration::from_micros(1_500),
    clients_per_shard: 12,
    saturation_ms: 2_000,
    open_loop_ms: 5_000,
    straggler_shards: 2,
};

const SMOKE: Scale = Scale {
    label: "smoke",
    shard_counts: &[1, 2],
    group_nodes: 8,
    group_k: 5,
    blocks: 10_000,
    node_delay: Duration::from_micros(200),
    clients_per_shard: 6,
    saturation_ms: 250,
    open_loop_ms: 500,
    straggler_shards: 1,
};

/// Uniform f64 in [0, 1) from the vendored integer-only RNG.
fn f64_unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// YCSB-style zipfian generator over `items` ranks, scrambled so the
/// hot ranks scatter uniformly over the block space (and therefore over
/// stripes and shards) instead of clustering in the first stripe.
struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    fn new(items: u64, theta: f64) -> Self {
        let zeta = |n: u64| -> f64 { (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(items);
        let zeta2 = zeta(2.min(items));
        Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draws a rank (0 = hottest), then scrambles it over the space.
    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u = f64_unit(rng);
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.items as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        // SplitMix64 finalizer: rank -> pseudo-random block, stable
        // across the run so rank 0 stays one single hot block.
        let mut z = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.items
    }
}

/// The plane under test: the router, the write-lock table, and a
/// handle on each group's transport (for fault injection, hedging
/// policy, and message accounting).
struct Plane {
    store: Arc<ShardedStore<Box<dyn QuorumStore>>>,
    locks: Arc<StripeLockManager>,
    transports: Vec<Arc<ChannelTransport>>,
    blocks: usize,
    group_k: usize,
}

impl Plane {
    fn addr(&self, block: u64) -> BlockAddr {
        BlockAddr::new(
            BASE_ID + block / self.group_k as u64,
            (block % self.group_k as u64) as usize,
        )
    }

    /// One client operation; returns `false` on a protocol error (the
    /// latency is recorded either way — failures are not free).
    fn run_op(&self, block: u64, write: bool, fill: u8) -> bool {
        let addr = self.addr(block);
        if write {
            let bytes = [fill; VALUE_LEN];
            let _guard = self.locks.lock(addr.stripe, addr.block);
            self.store.write(addr, &bytes).is_ok()
        } else {
            self.store.read(addr).is_ok()
        }
    }
}

/// Builds `shard_count` independent groups, provisions the block space
/// at zero injected latency, then turns the service delay on.
fn build_plane(shard_count: usize, scale: &Scale) -> Plane {
    let mut shards: Vec<Box<dyn QuorumStore>> = Vec::with_capacity(shard_count);
    let mut transports = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let transport = Arc::new(ChannelTransport::new(Cluster::new(scale.group_nodes)));
        let store = Store::trap_erc(scale.group_nodes, scale.group_k)
            .shape(2, 1, 1)
            .uniform_w(2)
            .transport(Arc::clone(&transport))
            .build()
            .expect("static bench parameters");
        shards.push(store);
        transports.push(transport);
    }
    let store = ShardedStore::new(shards, ShardMap::hashed(shard_count).unwrap()).unwrap();

    let stripes = scale.blocks.div_ceil(scale.group_k) as u64;
    store
        .provision_striped(BASE_ID, stripes, scale.group_k, VALUE_LEN)
        .expect("provisioning under zero latency succeeds");

    for transport in &transports {
        for node in 0..scale.group_nodes {
            transport.set_node_latency(node, scale.node_delay);
        }
    }
    Plane {
        store: Arc::new(store),
        locks: StripeLockManager::new(),
        transports,
        blocks: (stripes as usize) * scale.group_k,
        group_k: scale.group_k,
    }
}

/// Closed-loop saturation probe: `clients` threads issue ops as fast as
/// they complete for `ms` milliseconds. Returns ops per second.
fn measure_saturation(plane: &Plane, zipf: &Zipfian, clients: usize, ms: u64) -> f64 {
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let (plane, zipf, stop, completed) = (&*plane, zipf, &stop, &completed);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC11E_0000 + client as u64);
                while !stop.load(Ordering::Relaxed) {
                    let block = zipf.sample(&mut rng);
                    let write = !rng.random_bool(READ_FRACTION);
                    let fill = rng.random_range(0..=u8::MAX);
                    plane.run_op(block, write, fill);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(ms));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();
    completed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

/// One dispatched open-loop request.
struct Job {
    scheduled_ns: u64,
    block: u64,
    write: bool,
    fill: u8,
}

/// Outcome of the open-loop phase: completion latencies (scheduled
/// arrival to completion, nanoseconds) and the error count.
struct OpenLoop {
    latencies: Vec<u64>,
    errors: u64,
}

/// Open-loop phase: Poisson arrivals at `rate_per_sec`, fanned over
/// `clients` workers round-robin. The dispatcher never blocks on a slow
/// worker — a backed-up worker's queue grows and the queueing delay
/// lands in the measured latency, which is the point.
fn run_open_loop(
    plane: &Plane,
    zipf: &Zipfian,
    clients: usize,
    rate_per_sec: f64,
    ms: u64,
) -> OpenLoop {
    let mut channels = Vec::with_capacity(clients);
    let mut receivers = Vec::with_capacity(clients);
    for _ in 0..clients {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        channels.push(tx);
        receivers.push(rx);
    }

    let epoch = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .map(|rx| {
                let plane = &*plane;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut errors = 0u64;
                    while let Ok(job) = rx.recv() {
                        if !plane.run_op(job.block, job.write, job.fill) {
                            errors += 1;
                        }
                        let now = epoch.elapsed().as_nanos() as u64;
                        latencies.push(now.saturating_sub(job.scheduled_ns));
                    }
                    (latencies, errors)
                })
            })
            .collect();

        // Dispatcher: exact exponential arrival schedule, paced in small
        // sleeps (dispatch lag counts against latency, as it should).
        let mut rng = StdRng::seed_from_u64(0x0E2E_D15B);
        let horizon_ns = ms as f64 * 1e6;
        let per_ns = rate_per_sec / 1e9;
        let mut t_ns = 0.0f64;
        let mut sent = 0usize;
        loop {
            t_ns += -(1.0 - f64_unit(&mut rng)).ln() / per_ns;
            if t_ns >= horizon_ns {
                break;
            }
            let job = Job {
                scheduled_ns: t_ns as u64,
                block: zipf.sample(&mut rng),
                write: !rng.random_bool(READ_FRACTION),
                fill: rng.random_range(0..=u8::MAX),
            };
            while (epoch.elapsed().as_nanos() as u64) < job.scheduled_ns {
                std::thread::sleep(Duration::from_micros(100));
            }
            let _ = channels[sent % clients].send(job);
            sent += 1;
        }
        drop(channels);

        let mut all = OpenLoop {
            latencies: Vec::new(),
            errors: 0,
        };
        for handle in handles {
            let (latencies, errors) = handle.join().expect("open-loop worker");
            all.latencies.extend(latencies);
            all.errors += errors;
        }
        all
    })
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn run_shard_count(shard_count: usize, scale: &Scale, zipf: &Zipfian) -> f64 {
    let clients = scale.clients_per_shard * shard_count;
    let build_started = Instant::now();
    let plane = build_plane(shard_count, scale);
    println!(
        "shards={shard_count}: {} nodes, {} blocks provisioned in {:.1?}",
        shard_count * scale.group_nodes,
        plane.blocks,
        build_started.elapsed()
    );

    let saturation = measure_saturation(&plane, zipf, clients, scale.saturation_ms);
    let offered = (saturation * LOAD_FACTOR).max(100.0);
    let open = run_open_loop(&plane, zipf, clients, offered, scale.open_loop_ms);
    let mut sorted = open.latencies.clone();
    sorted.sort_unstable();
    let (p50, p99, p999) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        percentile(&sorted, 0.999),
    );
    println!(
        "shards={shard_count}: saturation {saturation:.0} ops/s, open loop {:.0} ops/s offered, \
         {} completed, {} errors, p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms",
        offered,
        sorted.len(),
        open.errors,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6,
    );

    let id = |name: &str| format!("e2e/shards={shard_count}/{name}");
    let sat_elapsed_ns = scale.saturation_ms as f64 * 1e6;
    criterion::record_measurement(
        &id("saturation"),
        sat_elapsed_ns,
        sat_elapsed_ns,
        Some(Throughput::Elements(
            (saturation * sat_elapsed_ns / 1e9) as u64,
        )),
    );
    criterion::record_measurement(&id("p50"), p50 as f64, p50 as f64, None);
    criterion::record_measurement(&id("p99"), p99 as f64, p99 as f64, None);
    criterion::record_measurement(&id("p999"), p999 as f64, p999 as f64, None);
    saturation
}

/// Node 0 of every group serves this many times slower on the
/// straggler axis — a gray node, not a dead one: it answers everything,
/// eventually.
const STRAGGLER_FACTOR: u32 = 30;

/// Wire messages and hedge counters summed over the plane's groups.
fn plane_counters(plane: &Plane) -> (u64, HedgeCounters) {
    let mut messages = 0;
    let mut hedges = HedgeCounters::default();
    for t in &plane.transports {
        messages += t.messages_sent();
        let c = t.health_registry().hedge_counters();
        hedges.fired += c.fired;
        hedges.won += c.won;
        hedges.dups += c.dups;
        hedges.retries += c.retries;
    }
    (messages, hedges)
}

/// One straggler-axis pass: percentiles plus per-op message cost.
struct StragglerRun {
    p50: u64,
    p99: u64,
    p999: u64,
    messages_per_op: f64,
    hedges_fired: u64,
}

/// The straggler axis (`TQ_E2E_STRAGGLER=1`): one gray node per group
/// serving [`STRAGGLER_FACTOR`]× slow, measured unhedged and hedged at
/// the *same* offered rate (fixed by the unhedged closed-loop probe, so
/// the comparison is latency under identical load, not load shedding).
/// The probe doubles as estimator warmup for the hedged pass. Writes
/// stop awaiting the gray node (first-quorum completion), reads route
/// around it through the decode path, and hedges mop up the residue —
/// the per-op message counts price all of that honestly.
fn run_straggler_axis(scale: &Scale, zipf: &Zipfian) {
    let shard_count = scale.straggler_shards;
    let clients = scale.clients_per_shard * shard_count;
    let gray_delay = scale.node_delay * STRAGGLER_FACTOR;
    println!(
        "straggler axis: {shard_count} group(s), node 0 of each at {gray_delay:?} \
         ({STRAGGLER_FACTOR}x), unhedged vs hedged (p99 policy)"
    );

    let mut offered: Option<f64> = None;
    let mut runs: Vec<(&str, StragglerRun)> = Vec::new();
    for hedged in [false, true] {
        let mode = if hedged { "hedged" } else { "unhedged" };
        let plane = build_plane(shard_count, scale);
        for t in &plane.transports {
            t.set_node_latency(0, gray_delay);
            if hedged {
                t.health_registry().set_policy(HedgePolicy::P99);
            }
        }
        let saturation = measure_saturation(&plane, zipf, clients, scale.saturation_ms);
        let rate = *offered.get_or_insert((saturation * LOAD_FACTOR).max(100.0));
        let (messages_before, hedges_before) = plane_counters(&plane);
        let open = run_open_loop(&plane, zipf, clients, rate, scale.open_loop_ms);
        let (messages_after, hedges_after) = plane_counters(&plane);

        let mut sorted = open.latencies.clone();
        sorted.sort_unstable();
        let ops = sorted.len().max(1);
        let run = StragglerRun {
            p50: percentile(&sorted, 0.50),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
            messages_per_op: (messages_after - messages_before) as f64 / ops as f64,
            hedges_fired: hedges_after.since(&hedges_before).fired,
        };
        println!(
            "straggler/{mode}: {:.0} ops/s offered, {} completed, {} errors, \
             p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, {:.2} msgs/op, {} hedges",
            rate,
            sorted.len(),
            open.errors,
            run.p50 as f64 / 1e6,
            run.p99 as f64 / 1e6,
            run.p999 as f64 / 1e6,
            run.messages_per_op,
            run.hedges_fired,
        );

        let id = |name: &str| format!("hedge/straggler/{mode}/{name}");
        criterion::record_measurement(&id("p50"), run.p50 as f64, run.p50 as f64, None);
        criterion::record_measurement(&id("p99"), run.p99 as f64, run.p99 as f64, None);
        criterion::record_measurement(&id("p999"), run.p999 as f64, run.p999 as f64, None);
        criterion::record_measurement(
            &id("messages_per_op"),
            run.messages_per_op,
            run.messages_per_op,
            None,
        );
        criterion::record_measurement(
            &id("hedges_fired"),
            run.hedges_fired as f64,
            run.hedges_fired as f64,
            None,
        );
        runs.push((mode, run));
    }

    if let [(_, base), (_, hedged)] = &runs[..] {
        let p99_gain = base.p99 as f64 / hedged.p99.max(1) as f64;
        let msg_overhead = hedged.messages_per_op / base.messages_per_op.max(1e-9) - 1.0;
        println!(
            "straggler summary: hedged p99 {p99_gain:.1}x better, \
             message overhead {:+.1}%",
            msg_overhead * 100.0
        );
        criterion::record_measurement("hedge/straggler/p99_gain", p99_gain, p99_gain, None);
        // Recorded in percent: the JSON report keeps one decimal, which
        // would collapse a fraction like 0.089 to an ambiguous 0.1.
        criterion::record_measurement(
            "hedge/straggler/message_overhead_pct",
            msg_overhead * 100.0,
            msg_overhead * 100.0,
            None,
        );
    }
}

fn main() {
    // Upstream-compatible gating: only run under `cargo bench`.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let scale = if std::env::var("TQ_E2E_SCALE").as_deref() == Ok("smoke") {
        &SMOKE
    } else {
        &FULL
    };
    println!(
        "e2e open-loop load ({}): groups ({}, {}) shape (2,1,1) w=2, {} blocks, \
         {:?} node delay, {}% reads, zipf theta {}",
        scale.label,
        scale.group_nodes,
        scale.group_k,
        scale.blocks,
        scale.node_delay,
        (READ_FRACTION * 100.0) as u32,
        ZIPF_THETA,
    );

    let stripes = scale.blocks.div_ceil(scale.group_k) as u64;
    let zipf = Zipfian::new(stripes * scale.group_k as u64, ZIPF_THETA);

    if std::env::var("TQ_E2E_STRAGGLER").as_deref() == Ok("1") {
        run_straggler_axis(scale, &zipf);
        criterion::write_json_report();
        return;
    }

    let mut saturations = Vec::new();
    for &shard_count in scale.shard_counts {
        saturations.push((shard_count, run_shard_count(shard_count, scale, &zipf)));
    }
    if let (Some(&(s0, base)), Some(&(s1, top))) = (saturations.first(), saturations.last()) {
        println!(
            "saturation scaling {s0}->{s1} shards: {:.2}x",
            top / base.max(1.0)
        );
    }
    criterion::write_json_report();
}
