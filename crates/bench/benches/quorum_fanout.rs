//! Sequential vs scatter-gather dispatch under injected per-node latency.
//!
//! The motivation for the quorum round engine in numbers: a trapezoid
//! level of `s_l` members costs `s_l` round trips when walked one
//! blocking call at a time, but roughly *one* round trip when fanned out
//! concurrently — the paper's quorum structure only pays off once
//! dispatch overlaps. This bench injects a uniform per-node service
//! delay into a [`ChannelTransport`] and measures both shapes at two
//! granularities:
//!
//! * raw rounds (`QuorumRound` over ping batches of level-like sizes);
//! * whole protocol operations (`TrapErcClient` writes/reads), where the
//!   sequential reference routes the *same* engine code through a
//!   wrapper that falls back to the default lazy sequential `multicall`.
//!
//! A speedup summary is printed at start-up (the repo's bench style:
//! artefact rows first, measurements after).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_cluster::{
    ChannelTransport, Cluster, Envelope, NodeId, QuorumRound, Reply, Request, Transport,
};
use tq_trapezoid::{ProtocolConfig, TrapErcClient};

/// Injected per-node service delay. Large enough to dominate channel
/// overhead, small enough to keep the bench quick.
const NODE_DELAY: Duration = Duration::from_micros(400);

/// Wrapper that keeps a transport's `call` but *drops* its concurrent
/// `multicall` override, restoring the default lazy sequential dispatch —
/// the seed implementation's shape, over identical latency.
struct SequentialDispatch<T>(T);

impl<T: Transport> Transport for SequentialDispatch<T> {
    fn node_count(&self) -> usize {
        self.0.node_count()
    }
    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        self.0.dispatch(node, env)
    }
    // multicall: inherited sequential default.
}

fn slow_transport(n: usize) -> ChannelTransport {
    ChannelTransport::with_latency(Cluster::new(n), &vec![NODE_DELAY; n])
}

fn pings(n: usize) -> Vec<(NodeId, Request)> {
    (0..n).map(|i| (NodeId(i), Request::Ping)).collect()
}

fn time<R>(mut f: impl FnMut() -> R, reps: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps
}

/// Printed preamble: the speedup table the tentpole promises.
fn print_speedup_summary() {
    eprintln!("# quorum_fanout — await-all round over s members, {NODE_DELAY:?}/node");
    eprintln!("# s  sequential  fanout  speedup");
    for s in [4usize, 8, 15] {
        let t = slow_transport(15);
        let seq = SequentialDispatch(&t);
        let sequential = time(
            || {
                let out = QuorumRound::await_all(s).run(&seq, pings(s));
                assert!(out.quorum_met());
            },
            10,
        );
        let fanout = time(
            || {
                let out = QuorumRound::await_all(s).run(&t, pings(s));
                assert!(out.quorum_met());
            },
            10,
        );
        eprintln!(
            "{s:>4}  {:>9.2?}  {fanout:>7.2?}  {:>6.2}x",
            sequential,
            sequential.as_secs_f64() / fanout.as_secs_f64()
        );
    }
}

fn bench_raw_rounds(c: &mut Criterion) {
    print_speedup_summary();
    let mut group = c.benchmark_group("fanout/round_awaitall");
    group.sample_size(20);
    for s in [4usize, 8, 15] {
        let t = slow_transport(15);
        group.bench_with_input(BenchmarkId::new("sequential", s), &s, |b, &s| {
            let seq = SequentialDispatch(&t);
            b.iter(|| QuorumRound::await_all(s).run(&seq, pings(s)))
        });
        group.bench_with_input(BenchmarkId::new("concurrent", s), &s, |b, &s| {
            b.iter(|| QuorumRound::await_all(s).run(&t, pings(s)))
        });
    }
    group.finish();

    // First-quorum: the concurrent round returns on the fastest `needed`
    // responders; the sequential walk still pays one delay per polled
    // member.
    let mut group = c.benchmark_group("fanout/round_first_quorum");
    group.sample_size(20);
    for (s, needed) in [(8usize, 2usize), (15, 8)] {
        let t = slow_transport(15);
        let id = format!("{needed}_of_{s}");
        group.bench_with_input(BenchmarkId::new("sequential", &id), &s, |b, &s| {
            let seq = SequentialDispatch(&t);
            b.iter(|| QuorumRound::first_quorum(needed).run(&seq, pings(s)))
        });
        group.bench_with_input(BenchmarkId::new("concurrent", &id), &s, |b, &s| {
            b.iter(|| QuorumRound::first_quorum(needed).run(&t, pings(s)))
        });
    }
    group.finish();
}

const BLOCK: usize = 1024;

fn protocol_fixture<T: Transport>(transport: T) -> TrapErcClient<T> {
    let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).expect("static parameters");
    let client = TrapErcClient::new(config, transport).expect("sized transport");
    let blocks: Vec<Vec<u8>> = (0..8)
        .map(|i| (0..BLOCK).map(|b| (i * 13 + b) as u8).collect())
        .collect();
    client.create_stripe(1, blocks).expect("all nodes up");
    client
}

fn bench_protocol_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout/protocol");
    group.sample_size(20);

    // Algorithm 1 (hinted): level 0 = N_i + 3 parity folds, level 1 = 4
    // parity folds; await-all both levels.
    let old = vec![0u8; BLOCK];
    let new = vec![0xA5u8; BLOCK];
    {
        let client = protocol_fixture(SequentialDispatch(slow_transport(15)));
        let mut version = 0u64;
        group.bench_function("write/sequential", |b| {
            b.iter(|| {
                let out = client
                    .write_block_with_hint(
                        1,
                        0,
                        &new,
                        if version == 0 { &old } else { &new },
                        version,
                    )
                    .expect("healthy cluster");
                version = out.version;
            })
        });
    }
    {
        let client = protocol_fixture(slow_transport(15));
        let mut version = 0u64;
        group.bench_function("write/concurrent", |b| {
            b.iter(|| {
                let out = client
                    .write_block_with_hint(
                        1,
                        0,
                        &new,
                        if version == 0 { &old } else { &new },
                        version,
                    )
                    .expect("healthy cluster");
                version = out.version;
            })
        });
    }

    // Algorithm 2: level-0 version check (r_0 = 2 of 4) + direct read.
    {
        let client = protocol_fixture(SequentialDispatch(slow_transport(15)));
        group.bench_function("read/sequential", |b| {
            b.iter(|| client.read_block(1, 0).expect("healthy cluster"))
        });
    }
    {
        let client = protocol_fixture(slow_transport(15));
        group.bench_function("read/concurrent", |b| {
            b.iter(|| client.read_block(1, 0).expect("healthy cluster"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_rounds, bench_protocol_ops);
criterion_main!(benches);
