//! Batched multi-stripe operations vs loops of single operations, under
//! injected per-node latency.
//!
//! The unified store's `write_batch`/`read_batch` do not loop single
//! ops: every block's level-`l` fan-out is fused into one
//! `MultiRound` scatter, so a batch of m blocks costs roughly one
//! network round per trapezoid level instead of m. This bench puts
//! numbers on that claim over a `ChannelTransport` whose nodes each
//! sleep a fixed service delay — the regime where rounds, not bytes,
//! dominate: the batch's wall-clock stays nearly flat in m while the
//! loop grows linearly.
//!
//! A speedup summary is printed at start-up (the repo's bench style:
//! artefact rows first, measurements after).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tq_cluster::{ChannelTransport, Cluster};
use tq_trapezoid::{BatchWrite, BlockAddr, QuorumStore, Store};

/// Injected per-node service delay. Large enough to dominate channel
/// overhead, small enough to keep the bench quick.
const NODE_DELAY: Duration = Duration::from_micros(400);

const BLOCK: usize = 256;
const STRIPES: u64 = 4;
const K: usize = 8;

/// A (15, 8) TRAP-ERC store with `STRIPES` provisioned stripes. With a
/// latency, every node sleeps that long per request — the regime where
/// network rounds dominate wall-clock — including during provisioning
/// (`STRIPES` fused rounds, negligible).
fn fixture(latency: Option<Duration>) -> Box<dyn QuorumStore> {
    let cluster = Cluster::new(15);
    let transport = match latency {
        Some(delay) => ChannelTransport::with_latency(cluster, &[delay; 15]),
        None => ChannelTransport::new(cluster),
    };
    let store = Store::trap_erc(15, K)
        .shape(0, 4, 1)
        .uniform_w(2)
        .transport(transport)
        .build()
        .expect("static parameters");
    for stripe in 0..STRIPES {
        let blocks: Vec<Vec<u8>> = (0..K)
            .map(|i| (0..BLOCK).map(|b| (i * 13 + b) as u8).collect())
            .collect();
        store.create(stripe, blocks).expect("all nodes up");
    }
    store
}

/// The round-dominated fixture: [`NODE_DELAY`] per request on every node.
fn slow_store() -> Box<dyn QuorumStore> {
    fixture(Some(NODE_DELAY))
}

/// Distinct addresses spanning several stripes — the multi-stripe batch
/// shape (`m ≤ STRIPES · K`).
fn addrs(m: usize) -> Vec<BlockAddr> {
    assert!(m as u64 <= STRIPES * K as u64);
    (0..m)
        .map(|i| BlockAddr::new((i / K) as u64, i % K))
        .collect()
}

fn time<R>(mut f: impl FnMut() -> R, reps: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps
}

/// Printed preamble: the batch-vs-loop table the tentpole promises.
fn print_speedup_summary() {
    eprintln!("# batch_ops — m blocks across {STRIPES} stripes, {NODE_DELAY:?}/node");
    eprintln!("# op     m  loop       batch     speedup  rounds(loop->batch)");
    for m in [4usize, 8, 16] {
        let store = slow_store();
        let addrs = addrs(m);
        let payload = vec![0xA5u8; BLOCK];
        let items: Vec<BatchWrite> = addrs
            .iter()
            .map(|&addr| BatchWrite::new(addr, payload.as_slice()))
            .collect();

        let mut loop_rounds = 0;
        let loop_write = time(
            || {
                loop_rounds = 0;
                for &addr in &addrs {
                    let out = store.write(addr, &payload).expect("healthy cluster");
                    loop_rounds += out.report.network_rounds();
                }
            },
            3,
        );
        let mut batch_rounds = 0;
        let batch_write = time(
            || {
                let batch = store.write_batch(&items);
                assert!(batch.all_ok());
                batch_rounds = batch.report.network_rounds();
            },
            3,
        );
        eprintln!(
            "  write {m:>2}  {loop_write:>8.2?}  {batch_write:>8.2?}  {:>6.2}x  {loop_rounds:>3} -> {batch_rounds}",
            loop_write.as_secs_f64() / batch_write.as_secs_f64()
        );

        let mut loop_rounds = 0;
        let loop_read = time(
            || {
                loop_rounds = 0;
                for &addr in &addrs {
                    let out = store.read(addr).expect("healthy cluster");
                    loop_rounds += out.report.network_rounds();
                }
            },
            3,
        );
        let mut batch_rounds = 0;
        let batch_read = time(
            || {
                let batch = store.read_batch(&addrs);
                assert!(batch.all_ok());
                batch_rounds = batch.report.network_rounds();
            },
            3,
        );
        eprintln!(
            "  read  {m:>2}  {loop_read:>8.2?}  {batch_read:>8.2?}  {:>6.2}x  {loop_rounds:>3} -> {batch_rounds}",
            loop_read.as_secs_f64() / batch_read.as_secs_f64()
        );
    }
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    print_speedup_summary();

    let mut group = c.benchmark_group("batch/write");
    group.sample_size(10);
    for m in [4usize, 8, 16] {
        let store = slow_store();
        let addrs = addrs(m);
        let payload = vec![0x3Cu8; BLOCK];
        let items: Vec<BatchWrite> = addrs
            .iter()
            .map(|&addr| BatchWrite::new(addr, payload.as_slice()))
            .collect();
        group.bench_with_input(BenchmarkId::new("loop", m), &m, |b, _| {
            b.iter(|| {
                for &addr in &addrs {
                    store.write(addr, &payload).expect("healthy cluster");
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", m), &m, |b, _| {
            b.iter(|| {
                let batch = store.write_batch(&items);
                assert!(batch.all_ok());
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("batch/read");
    group.sample_size(10);
    for m in [4usize, 8, 16] {
        let store = slow_store();
        let addrs = addrs(m);
        group.bench_with_input(BenchmarkId::new("loop", m), &m, |b, _| {
            b.iter(|| {
                for &addr in &addrs {
                    store.read(addr).expect("healthy cluster");
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", m), &m, |b, _| {
            b.iter(|| {
                let batch = store.read_batch(&addrs);
                assert!(batch.all_ok());
            })
        });
    }
    group.finish();

    // Zero-latency sanity: fusion must not cost anything when rounds are
    // cheap (the fused plan is the same message volume).
    let mut group = c.benchmark_group("batch/zero_latency_read");
    group.sample_size(20);
    let store = fixture(None);
    let addrs = addrs(8);
    group.bench_function("loop", |b| {
        b.iter(|| {
            for &addr in &addrs {
                store.read(addr).expect("healthy cluster");
            }
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            let batch = store.read_batch(&addrs);
            assert!(batch.all_ok());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_loop);
criterion_main!(benches);
