//! Codec throughput: encode, single-block decode, full reconstruction
//! and the delta path, for the paper's code shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tq_bench::payload;
use tq_erasure::{delta, CodeParams, ReedSolomon};

const BLOCK: usize = 4096;

fn setup(n: usize, k: usize) -> (ReedSolomon, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let rs = ReedSolomon::new(CodeParams::new(n, k).expect("valid"));
    let data: Vec<Vec<u8>> = (0..k).map(|i| payload(BLOCK, i as u8)).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = rs.encode(&refs);
    (rs, data, parity)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode");
    for (n, k) in [(9usize, 6usize), (15, 8), (14, 10)] {
        let (rs, data, _) = setup(n, k);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        group.throughput(Throughput::Bytes((k * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| b.iter(|| rs.encode(black_box(&refs))),
        );
    }
    group.finish();
}

fn bench_decode_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/decode_block");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, parity) = setup(n, k);
        // Worst case: the target is a data block and only parity + other
        // data survive.
        let available: Vec<(usize, &[u8])> = (1..k)
            .map(|i| (i, data[i].as_slice()))
            .chain(
                parity
                    .iter()
                    .enumerate()
                    .map(|(j, p)| (k + j, p.as_slice())),
            )
            .collect();
        group.throughput(Throughput::Bytes(BLOCK as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    rs.decode_block(0, black_box(&available))
                        .expect("decodable")
                })
            },
        );
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct_max_loss");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, parity) = setup(n, k);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        group.throughput(Throughput::Bytes(((n - k) * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter_with_setup(
                    || {
                        let mut shards: Vec<Option<Vec<u8>>> =
                            full.iter().cloned().map(Some).collect();
                        for lost in 0..(n - k) {
                            shards[lost * n / (n - k)] = None;
                        }
                        shards
                    },
                    |mut shards| rs.reconstruct(black_box(&mut shards)).expect("recoverable"),
                )
            },
        );
    }
    group.finish();
}

fn bench_parity_deltas(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/parity_deltas");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, _) = setup(n, k);
        let new_block = payload(BLOCK, 0xEE);
        group.throughput(Throughput::Bytes(((n - k) * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    delta::parity_deltas(&rs, 0, black_box(&data[0]), black_box(&new_block))
                        .expect("valid update")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode_block,
    bench_reconstruct,
    bench_parity_deltas
);
criterion_main!(benches);
