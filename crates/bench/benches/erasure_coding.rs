//! Codec throughput: encode, single-block decode, full reconstruction
//! and the delta path, for the paper's code shapes.
//!
//! `encode` runs at 4 KiB *and* 64 KiB blocks (the README's Performance
//! table reads both sizes from `BENCH_erasure.json`), and the
//! `encode_backends` group pits the scalar reference against the
//! dispatched SIMD tier on the same stripe so the end-to-end coding
//! speedup is recorded alongside the kernel-level one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tq_bench::payload;
use tq_erasure::{delta, CodeParams, ReedSolomon};
use tq_gf256::simd::Backend;
use tq_gf256::Gf256;

const BLOCK: usize = 4096;

fn setup_sized(n: usize, k: usize, block: usize) -> (ReedSolomon, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let rs = ReedSolomon::new(CodeParams::new(n, k).expect("valid"));
    let data: Vec<Vec<u8>> = (0..k).map(|i| payload(block, i as u8)).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = rs.encode(&refs);
    (rs, data, parity)
}

fn setup(n: usize, k: usize) -> (ReedSolomon, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    setup_sized(n, k, BLOCK)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode");
    for (n, k) in [(9usize, 6usize), (15, 8), (14, 10)] {
        for block in [BLOCK, 65536] {
            let (rs, data, mut parity) = setup_sized(n, k, block);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            group.throughput(Throughput::Bytes((k * block) as u64));
            // encode_into with reused buffers: the steady-state re-encode
            // cost (the scrub path), free of allocator noise.
            group.bench_with_input(
                BenchmarkId::new("stripe", format!("{n}_{k}_{block}")),
                &k,
                |b, _| b.iter(|| rs.encode_into(black_box(&refs), black_box(&mut parity))),
            );
        }
    }
    group.finish();
}

fn bench_encode_backends(c: &mut Criterion) {
    // The same (9, 6) stripe encoded through the scalar reference and
    // through every SIMD tier the machine has, via the raw backend API
    // (one fused multi pass per parity block, like `encode_into`).
    let mut group = c.benchmark_group("erasure/encode_backends");
    let (rs, data, mut parity) = setup(9, 6);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let rows: Vec<Vec<Gf256>> = (6..9).map(|j| rs.generator_row(j).to_vec()).collect();
    group.throughput(Throughput::Bytes((6 * BLOCK) as u64));
    for backend in Backend::available() {
        group.bench_with_input(
            BenchmarkId::new(backend.name(), format!("9_6_{BLOCK}")),
            &BLOCK,
            |b, _| {
                b.iter(|| {
                    for (row, out) in rows.iter().zip(parity.iter_mut()) {
                        out.fill(0);
                        backend.mul_add_multi(black_box(row), black_box(&refs), out);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_decode_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/decode_block");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, parity) = setup(n, k);
        // Worst case: the target is a data block and only parity + other
        // data survive.
        let available: Vec<(usize, &[u8])> = (1..k)
            .map(|i| (i, data[i].as_slice()))
            .chain(
                parity
                    .iter()
                    .enumerate()
                    .map(|(j, p)| (k + j, p.as_slice())),
            )
            .collect();
        group.throughput(Throughput::Bytes(BLOCK as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    rs.decode_block(0, black_box(&available))
                        .expect("decodable")
                })
            },
        );
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct_max_loss");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, parity) = setup(n, k);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        group.throughput(Throughput::Bytes(((n - k) * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter_with_setup(
                    || {
                        let mut shards: Vec<Option<Vec<u8>>> =
                            full.iter().cloned().map(Some).collect();
                        for lost in 0..(n - k) {
                            shards[lost * n / (n - k)] = None;
                        }
                        shards
                    },
                    |mut shards| rs.reconstruct(black_box(&mut shards)).expect("recoverable"),
                )
            },
        );
    }
    group.finish();
}

fn bench_parity_deltas(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/parity_deltas");
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let (rs, data, _) = setup(n, k);
        let new_block = payload(BLOCK, 0xEE);
        group.throughput(Throughput::Bytes(((n - k) * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    delta::parity_deltas(&rs, 0, black_box(&data[0]), black_box(&new_block))
                        .expect("valid update")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_encode_backends,
    bench_decode_block,
    bench_reconstruct,
    bench_parity_deltas
);
criterion_main!(benches);
