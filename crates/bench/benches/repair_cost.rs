//! Repair cost — the §I concern quantified.
//!
//! "When one node fails, the blocks it owned have to be reconstructed …
//! this process may be very compute-intensive and may have a significant
//! impact on the storage system performances." This bench measures:
//!
//! * codec-level exact repair of one block as k grows (the k-reads cost
//!   a classical MDS code pays per lost block);
//! * functional repair row search (MDS re-validation dominates);
//! * cluster-level node rebuild (protocol reads + install) per stripe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tq_bench::{paper_config, payload};
use tq_cluster::{Cluster, LocalTransport};
use tq_erasure::repair::{execute_exact_repair, functional_repair_row, plan_exact_repair};
use tq_erasure::{CodeParams, ReedSolomon};
use tq_trapezoid::TrapErcClient;

const BLOCK: usize = 4096;

fn bench_exact_repair_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair/exact_one_block");
    for k in [6usize, 8, 10, 12] {
        let n = k + 3;
        let rs = ReedSolomon::new(CodeParams::new(n, k).expect("valid"));
        let data: Vec<Vec<u8>> = (0..k).map(|i| payload(BLOCK, i as u8)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        let live: Vec<usize> = (1..n).collect();
        let plan = plan_exact_repair(&rs, 0, &live).expect("k survivors");
        let blocks: Vec<&[u8]> = plan.sources.iter().map(|&s| full[s].as_slice()).collect();
        group.throughput(Throughput::Bytes(plan.bytes_read(BLOCK) as u64));
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| execute_exact_repair(&rs, black_box(&plan), black_box(&blocks)).unwrap())
        });
    }
    group.finish();
}

fn bench_functional_repair_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair/functional_row_search");
    group.sample_size(20);
    for (n, k) in [(9usize, 6usize), (15, 8)] {
        let rs = ReedSolomon::new(CodeParams::new(n, k).expect("valid"));
        group.bench_with_input(
            BenchmarkId::new("stripe", format!("{n}_{k}")),
            &k,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    functional_repair_row(black_box(&rs), k, seed).expect("repairable")
                })
            },
        );
    }
    group.finish();
}

fn bench_cluster_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair/cluster_rebuild_node");
    group.sample_size(20);
    group.throughput(Throughput::Bytes((8 * BLOCK) as u64)); // k source reads
    let cluster = Cluster::new(15);
    let client =
        TrapErcClient::new(paper_config(), LocalTransport::new(cluster.clone())).expect("sized");
    let blocks: Vec<Vec<u8>> = (0..8).map(|i| payload(BLOCK, i as u8)).collect();
    client.create_stripe(1, blocks).expect("all up");
    group.bench_function("data_node", |b| {
        b.iter_with_setup(
            || cluster.replace(0),
            |()| client.rebuild_node(1, 0).expect("readable stripe"),
        )
    });
    group.bench_function("parity_node", |b| {
        b.iter_with_setup(
            || cluster.replace(10),
            |()| client.rebuild_node(1, 10).expect("readable stripe"),
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_repair_by_k,
    bench_functional_repair_row,
    bench_cluster_rebuild
);
criterion_main!(benches);
