//! Figure 5 — storage space per data block, TRAP-ERC vs TRAP-FR.
//!
//! Prints the figure's rows (analytic + measured bytes on a provisioned
//! cluster) at start-up, then measures stripe provisioning cost — the
//! operation whose footprint eqs. 14/15 describe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tq_cluster::{Cluster, LocalTransport};
use tq_sim::{experiments, report};
use tq_trapezoid::TrapErcClient;

fn print_figure() {
    let fig = experiments::fig5_storage(4096);
    eprintln!("{}", report::to_markdown(&fig));
}

fn bench_stripe_provisioning(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig5/create_stripe");
    group.sample_size(30);
    const BLOCK: usize = 4096;
    for k in [8usize, 10, 12] {
        let (shape, th) = experiments::shape_for_k(k);
        let config = tq_trapezoid::ProtocolConfig::new(
            tq_erasure::CodeParams::new(15, k).expect("valid"),
            shape,
            th,
        )
        .expect("valid");
        group.throughput(Throughput::Bytes((15 * BLOCK) as u64));
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            let cluster = Cluster::new(15);
            let client =
                TrapErcClient::new(config.clone(), LocalTransport::new(cluster)).expect("sized");
            let blocks: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; BLOCK]).collect();
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                client.create_stripe(id, blocks.clone()).expect("all up")
            })
        });
    }
    group.finish();
}

fn bench_storage_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/stored_bytes_scan");
    let cluster = Cluster::new(15);
    let client = TrapErcClient::new(
        tq_bench::paper_config(),
        LocalTransport::new(cluster.clone()),
    )
    .expect("sized");
    for id in 0..64u64 {
        let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 1024]).collect();
        client.create_stripe(id, blocks).expect("all up");
    }
    group.bench_function("64_stripes", |b| b.iter(|| cluster.stored_bytes()));
    group.finish();
}

criterion_group!(benches, bench_stripe_provisioning, bench_storage_accounting);
criterion_main!(benches);
