//! Figure 2 — write availability of TRAP-ERC vs node availability p.
//!
//! On start-up the figure's rows are printed to stderr (same series as
//! `figures -- fig2`); the measured benchmarks cover the eq. 9 closed
//! form and one hinted protocol write per sampled availability pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tq_bench::paper_config;
use tq_quorum::availability;
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use tq_sim::monte_carlo::protocol_write_availability;
use tq_sim::{experiments, report};

fn print_figure() {
    let fig = experiments::fig2_write_availability(10, 400, 0xF16);
    eprintln!("{}", report::to_markdown(&fig));
}

fn bench_eq9_evaluation(c: &mut Criterion) {
    print_figure();
    let shape = TrapezoidShape::new(0, 4, 1).expect("static shape");
    let mut group = c.benchmark_group("fig2/eq9_closed_form");
    for w in [1usize, 2, 4] {
        let th = WriteThresholds::paper_default(&shape, w).expect("valid w");
        group.bench_with_input(BenchmarkId::new("w", w), &w, |b, _| {
            b.iter(|| {
                // A full 101-point sweep, the unit of work behind the plot.
                let mut acc = 0.0;
                for i in 0..=100 {
                    let p = i as f64 / 100.0;
                    acc += availability::write_availability(black_box(&shape), &th, p);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_protocol_write_trials(c: &mut Criterion) {
    let config = paper_config();
    let mut group = c.benchmark_group("fig2/protocol_write_100_trials");
    group.sample_size(10);
    for p in [0.5f64, 0.9] {
        group.bench_with_input(BenchmarkId::new("p", format!("{p}")), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                protocol_write_availability(black_box(&config), p, 100, seed, true)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eq9_evaluation, bench_protocol_write_trials);
criterion_main!(benches);
