//! Throughput of the GF(2⁸) slice kernels — the arithmetic floor under
//! every encode, decode and delta update in the system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tq_bench::payload;
use tq_gf256::{slice_ops, Gf256, Matrix};

fn bench_mul_add_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/mul_add_slice");
    for size in [256usize, 4096, 65536] {
        let src = payload(size, 3);
        let mut dst = payload(size, 7);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_add_slice(Gf256(0x53), black_box(&src), black_box(&mut dst));
            })
        });
    }
    group.finish();
}

fn bench_mul_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/mul_slice");
    for size in [4096usize, 65536] {
        let src = payload(size, 5);
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_slice(Gf256(0xC3), black_box(&src), black_box(&mut dst));
            })
        });
    }
    group.finish();
}

fn bench_add_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/add_assign");
    let size = 65536usize;
    let src = payload(size, 11);
    let mut dst = payload(size, 13);
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function(BenchmarkId::from_parameter(size), |b| {
        b.iter(|| slice_ops::add_assign(black_box(&mut dst), black_box(&src)))
    });
    group.finish();
}

fn bench_matrix_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/matrix_inverse");
    for k in [6usize, 8, 12] {
        // The decode-path inversion: a k×k submatrix of the generator.
        let m = {
            let v = Matrix::vandermonde(k + 4, k);
            let rows: Vec<usize> = (2..k + 2).collect();
            v.select_rows(&rows)
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(&m).inverse().expect("invertible"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mul_add_slice,
    bench_mul_slice,
    bench_add_assign,
    bench_matrix_inverse
);
criterion_main!(benches);
