//! Throughput of the GF(2⁸) slice kernels — the arithmetic floor under
//! every encode, decode and delta update in the system.
//!
//! The `mul_add_slice` group measures the *dispatched* kernel (whatever
//! tier detection or `TQ_GF256_FORCE` selected); the `backends` group
//! measures every tier this machine can run side by side, so the
//! scalar-vs-SIMD speedup is a recorded number in `BENCH_gf256.json`
//! rather than a claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tq_bench::payload;
use tq_gf256::simd::Backend;
use tq_gf256::{slice_ops, Gf256, Matrix};

fn bench_mul_add_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/mul_add_slice");
    for size in [256usize, 4096, 65536] {
        let src = payload(size, 3);
        let mut dst = payload(size, 7);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_add_slice(Gf256(0x53), black_box(&src), black_box(&mut dst));
            })
        });
    }
    group.finish();
}

fn bench_mul_add_slice_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/mul_add_slice_backends");
    for size in [4096usize, 65536] {
        let src = payload(size, 3);
        let mut dst = payload(size, 7);
        group.throughput(Throughput::Bytes(size as u64));
        for backend in Backend::available() {
            group.bench_with_input(BenchmarkId::new(backend.name(), size), &size, |b, _| {
                b.iter(|| {
                    backend.mul_add_slice(Gf256(0x53), black_box(&src), black_box(&mut dst));
                })
            });
        }
    }
    group.finish();
}

fn bench_mul_add_multi(c: &mut Criterion) {
    // A (9, 6) parity block's linear combination: 6 source blocks into
    // one accumulator — fused single pass vs one mul_add pass per block.
    let mut group = c.benchmark_group("gf256/mul_add_multi_k6");
    for size in [4096usize, 65536] {
        let blocks: Vec<Vec<u8>> = (0..6).map(|i| payload(size, i as u8)).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let coeffs: Vec<Gf256> = (1..=6).map(|i| Gf256(i as u8 * 31)).collect();
        let mut dst = payload(size, 0xEE);
        group.throughput(Throughput::Bytes((6 * size) as u64));
        group.bench_with_input(BenchmarkId::new("fused", size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_add_multi(black_box(&coeffs), black_box(&refs), black_box(&mut dst))
            })
        });
        group.bench_with_input(BenchmarkId::new("per_block", size), &size, |b, _| {
            b.iter(|| {
                for (&co, &bl) in coeffs.iter().zip(&refs) {
                    slice_ops::mul_add_slice(co, black_box(bl), black_box(&mut dst));
                }
            })
        });
    }
    group.finish();
}

fn bench_mul_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/mul_slice");
    for size in [4096usize, 65536] {
        let src = payload(size, 5);
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_slice(Gf256(0xC3), black_box(&src), black_box(&mut dst));
            })
        });
    }
    group.finish();
}

fn bench_add_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/add_assign");
    let size = 65536usize;
    let src = payload(size, 11);
    let mut dst = payload(size, 13);
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function(BenchmarkId::from_parameter(size), |b| {
        b.iter(|| slice_ops::add_assign(black_box(&mut dst), black_box(&src)))
    });
    group.finish();
}

fn bench_matrix_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256/matrix_inverse");
    for k in [6usize, 8, 12] {
        // The decode-path inversion: a k×k submatrix of the generator.
        let m = {
            let v = Matrix::vandermonde(k + 4, k);
            let rows: Vec<usize> = (2..k + 2).collect();
            v.select_rows(&rows)
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(&m).inverse().expect("invertible"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mul_add_slice,
    bench_mul_add_slice_backends,
    bench_mul_add_multi,
    bench_mul_slice,
    bench_add_assign,
    bench_matrix_inverse
);
criterion_main!(benches);
