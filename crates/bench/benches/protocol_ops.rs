//! Protocol operation latency on a healthy cluster: TRAP-ERC against
//! TRAP-FR and the §II replication baselines, plus the scrub extension.
//!
//! The interesting comparison is *work per logical write*: TRAP-ERC
//! touches n − k + 1 nodes with one full block and n − k deltas, ROWA
//! touches all replicas with full blocks, Majority a majority.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tq_bench::{payload, provisioned};
use tq_cluster::{Cluster, LocalTransport};
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use tq_trapezoid::baselines::{MajorityClient, RowaClient};
use tq_trapezoid::TrapFrClient;

const BLOCK: usize = 4096;

fn bench_write_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/write");
    group.throughput(Throughput::Bytes(BLOCK as u64));

    let (_cluster, erc) = provisioned(BLOCK);
    let new = payload(BLOCK, 0xA1);
    group.bench_function("trap_erc", |b| {
        b.iter(|| erc.write_block(1, 0, &new).expect("healthy cluster"))
    });

    // TRAP-FR on the same 8-node trapezoid (full replication).
    let shape = TrapezoidShape::new(0, 4, 1).expect("static");
    let th = WriteThresholds::paper_default(&shape, 2).expect("valid");
    let fr_cluster = Cluster::new(8);
    let fr = TrapFrClient::new(shape, th, LocalTransport::new(fr_cluster)).expect("sized");
    fr.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("trap_fr", |b| {
        b.iter(|| fr.write(1, &new).expect("healthy cluster"))
    });

    // Baselines on n - k + 1 = 8 replicas for an equal-availability frame.
    let rowa_cluster = Cluster::new(8);
    let rowa = RowaClient::new(8, LocalTransport::new(rowa_cluster)).expect("sized");
    rowa.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("rowa", |b| {
        b.iter(|| rowa.write(1, &new).expect("healthy cluster"))
    });

    let maj_cluster = Cluster::new(8);
    let majority = MajorityClient::new(8, LocalTransport::new(maj_cluster)).expect("sized");
    majority.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("majority", |b| {
        b.iter(|| majority.write(1, &new).expect("healthy cluster"))
    });
    group.finish();
}

fn bench_read_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/read");
    group.throughput(Throughput::Bytes(BLOCK as u64));

    let (cluster, erc) = provisioned(BLOCK);
    group.bench_function("trap_erc_direct", |b| {
        b.iter(|| erc.read_block(1, 0).expect("healthy"))
    });
    cluster.kill(0);
    group.bench_function("trap_erc_decode", |b| {
        b.iter(|| erc.read_block(1, 0).expect("decode path"))
    });
    cluster.revive(0);

    let shape = TrapezoidShape::new(0, 4, 1).expect("static");
    let th = WriteThresholds::paper_default(&shape, 2).expect("valid");
    let fr_cluster = Cluster::new(8);
    let fr = TrapFrClient::new(shape, th, LocalTransport::new(fr_cluster)).expect("sized");
    fr.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("trap_fr", |b| b.iter(|| fr.read(1).expect("healthy")));

    let rowa_cluster = Cluster::new(8);
    let rowa = RowaClient::new(8, LocalTransport::new(rowa_cluster)).expect("sized");
    rowa.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("rowa", |b| b.iter(|| rowa.read(1).expect("healthy")));

    let maj_cluster = Cluster::new(8);
    let majority = MajorityClient::new(8, LocalTransport::new(maj_cluster)).expect("sized");
    majority.create(1, &payload(BLOCK, 0)).expect("all up");
    group.bench_function("majority", |b| {
        b.iter(|| majority.read(1).expect("healthy"))
    });
    group.finish();
}

fn bench_scrub(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/scrub_stripe");
    group.sample_size(30);
    let (_cluster, client) = provisioned(BLOCK);
    group.bench_function("healthy_15_8", |b| {
        b.iter(|| client.scrub_stripe(1).expect("all up"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_write_latency,
    bench_read_latency,
    bench_scrub
);
criterion_main!(benches);
