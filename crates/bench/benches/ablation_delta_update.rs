//! Ablation: the paper's in-place delta update (Algorithm 1 line 27)
//! against the naive read-modify-write it replaces.
//!
//! §I frames the cost: "a (9,6)-MDS will require 8 read and write
//! operations for a single block update" in the basic scheme — the delta
//! path sends each parity node one `add` instead of rewriting the whole
//! stripe. This bench measures both the wall-clock and the *bytes moved*
//! (from the cluster's IO counters, printed at start-up).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tq_bench::{payload, provisioned};
use tq_cluster::{LocalTransport, NodeId, Request, Response, Transport};
use tq_trapezoid::TrapErcClient;

const BLOCK: usize = 4096;

/// The naive update: read every data block, re-encode the whole stripe,
/// rewrite every parity block (and the target data block).
fn naive_reencode_update(
    client: &TrapErcClient<LocalTransport>,
    id: u64,
    target: usize,
    new: &[u8],
) {
    let transport = client.transport();
    let k = client.config().params().k();
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
    let mut versions = Vec::with_capacity(k);
    for i in 0..k {
        match transport
            .call(NodeId(i), Request::ReadData { id })
            .expect("up")
        {
            Response::Data { bytes, version, .. } => {
                data.push(bytes.to_vec());
                versions.push(version);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    data[target].copy_from_slice(new);
    versions[target] += 1;
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = client.codec().encode(&refs);
    transport
        .call(
            NodeId(target),
            Request::WriteData {
                id,
                bytes: Bytes::copy_from_slice(new),
                version: versions[target],
            },
        )
        .expect("up");
    for (j, p) in client.config().params().parity_indices().zip(&parity) {
        transport
            .call(
                NodeId(j),
                Request::WriteParity {
                    id,
                    bytes: Bytes::copy_from_slice(p),
                    versions: versions.clone(),
                    checks: vec![],
                },
            )
            .expect("up");
    }
}

fn print_io_comparison() {
    // One update through each path, counting bytes on the wire.
    let (cluster, client) = provisioned(BLOCK);
    let new = payload(BLOCK, 0x77);
    let before = cluster.io_totals();
    client.write_block(1, 0, &new).expect("healthy");
    let delta_io = cluster.io_totals().since(&before);

    let (cluster2, client2) = provisioned(BLOCK);
    let before = cluster2.io_totals();
    naive_reencode_update(&client2, 1, 0, &payload(BLOCK, 0x78));
    let naive_io = cluster2.io_totals().since(&before);

    eprintln!("## ablation — one 4 KiB block update on a (15, 8) stripe\n");
    eprintln!("| path | node ops | bytes in | bytes out |");
    eprintln!("|---|---|---|---|");
    eprintln!(
        "| delta (Algorithm 1) | {} | {} | {} |",
        delta_io.total_ops(),
        delta_io.bytes_in,
        delta_io.bytes_out
    );
    eprintln!(
        "| naive re-encode | {} | {} | {} |",
        naive_io.total_ops(),
        naive_io.bytes_in,
        naive_io.bytes_out
    );
    eprintln!(
        "\ndelta path moves {:.1}x fewer bytes into nodes ({} vs {}).\n",
        naive_io.bytes_in as f64 / delta_io.bytes_in.max(1) as f64,
        delta_io.bytes_in,
        naive_io.bytes_in
    );
}

fn bench_update_paths(c: &mut Criterion) {
    print_io_comparison();
    let mut group = c.benchmark_group("ablation/update_paths");
    group.throughput(Throughput::Bytes(BLOCK as u64));

    let (_cluster, client) = provisioned(BLOCK);
    let new = payload(BLOCK, 0xA9);
    group.bench_function("delta_algorithm1", |b| {
        b.iter(|| client.write_block(1, 0, &new).expect("healthy"))
    });

    let (_cluster2, client2) = provisioned(BLOCK);
    group.bench_function("naive_reencode", |b| {
        b.iter(|| naive_reencode_update(&client2, 1, 0, &new))
    });
    group.finish();
}

fn bench_hint_ablation(c: &mut Criterion) {
    // Second ablation: Algorithm 1's embedded READBLOCK vs a cached old
    // value — the protocol-vs-eq.9 gap in time rather than availability.
    let mut group = c.benchmark_group("ablation/embedded_read");
    group.throughput(Throughput::Bytes(BLOCK as u64));
    let (_cluster, client) = provisioned(BLOCK);
    let old = client.read_block(1, 0).expect("healthy");
    let new = old.bytes.clone(); // idempotent writes keep the hint exact
    group.bench_function("with_embedded_read", |b| {
        b.iter(|| client.write_block(1, 0, &new).expect("healthy"))
    });
    // Sync the version after the measured loop so hints stay valid.
    let mut version = client.read_block(1, 0).expect("healthy").version;
    group.bench_function("with_hint", |b| {
        b.iter(|| {
            let w = client
                .write_block_with_hint(1, 0, &new, &new, version)
                .expect("healthy");
            version = w.version;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_paths, bench_hint_ablation);
criterion_main!(benches);
