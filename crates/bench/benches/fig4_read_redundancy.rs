//! Figure 4 — TRAP-ERC read availability across redundancy levels
//! (n − k ∈ {3, 5, 7} at n = 15).
//!
//! Prints the figure's rows at start-up, then measures eq. 13 for each
//! redundancy level and the decode-path read cost as k grows (larger k
//! ⇒ bigger matrix inversion and more blocks to combine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tq_cluster::{Cluster, LocalTransport};
use tq_quorum::availability;
use tq_sim::{experiments, report};
use tq_trapezoid::TrapErcClient;

fn print_figure() {
    let fig = experiments::fig4_read_redundancy(10, 400, 0xF18);
    eprintln!("{}", report::to_markdown(&fig));
}

fn bench_eq13_by_redundancy(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig4/eq13_101pt_sweep");
    for k in [12usize, 10, 8] {
        let (shape, th) = experiments::shape_for_k(k);
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..=100 {
                    acc += availability::read_availability_erc(
                        black_box(&shape),
                        &th,
                        15,
                        k,
                        i as f64 / 100.0,
                    );
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_decode_read_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/decode_read_op");
    for k in [8usize, 10, 12] {
        let (shape, th) = experiments::shape_for_k(k);
        let config = tq_trapezoid::ProtocolConfig::new(
            tq_erasure::CodeParams::new(15, k).expect("valid"),
            shape,
            th,
        )
        .expect("valid");
        let cluster = Cluster::new(15);
        let client =
            TrapErcClient::new(config, LocalTransport::new(cluster.clone())).expect("sized");
        let blocks: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 2048]).collect();
        client.create_stripe(1, blocks).expect("all up");
        cluster.kill(0); // force the decode path for block 0
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| client.read_block(1, 0).expect("decode path"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eq13_by_redundancy, bench_decode_read_by_k);
criterion_main!(benches);
