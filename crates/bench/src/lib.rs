//! # tq-bench — shared helpers for the Criterion benchmark harness
//!
//! Each bench target regenerates one artefact of the paper's evaluation
//! (its data rows are printed to stderr at bench start-up, so `cargo
//! bench` output contains the figures) and then measures the cost of the
//! computations behind it:
//!
//! | target | regenerates | measures |
//! |---|---|---|
//! | `fig2_write_availability` | Fig. 2 rows | eq. 9 evaluation, hinted protocol writes |
//! | `fig3_read_availability` | Fig. 3 rows | eq. 10/13 evaluation, protocol reads FR vs ERC |
//! | `fig4_read_redundancy` | Fig. 4 rows | eq. 13 across redundancy levels |
//! | `fig5_storage_space` | Fig. 5 rows | stripe provisioning + storage accounting |
//! | `gf256_ops` | — | GF(2⁸) slice kernels |
//! | `erasure_coding` | — | encode / decode / reconstruct / delta |
//! | `protocol_ops` | — | read/write latency: TRAP-ERC vs TRAP-FR vs Majority vs ROWA |
//! | `ablation_delta_update` | §I update-cost claim | delta update vs naive re-encode |

use tq_cluster::{Cluster, LocalTransport};
use tq_trapezoid::{ProtocolConfig, TrapErcClient};

/// The canonical (15, 8) Fig.-3 configuration used across benches.
pub fn paper_config() -> ProtocolConfig {
    ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).expect("static parameters")
}

/// A provisioned (cluster, client) pair with one stripe of `block_len`
/// blocks at id 1.
pub fn provisioned(block_len: usize) -> (Cluster, TrapErcClient<LocalTransport>) {
    let cluster = Cluster::new(15);
    let client = TrapErcClient::new(paper_config(), LocalTransport::new(cluster.clone()))
        .expect("sized transport");
    let blocks: Vec<Vec<u8>> = (0..8)
        .map(|i| (0..block_len).map(|b| (i * 13 + b) as u8).collect())
        .collect();
    client.create_stripe(1, blocks).expect("all nodes up");
    (cluster, client)
}

/// Deterministic pseudo-random payload.
pub fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_mul(31).wrapping_add((i * 7) as u8))
        .collect()
}
