//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided, backed by `std::sync::mpsc`. The
//! semantics the workspace relies on hold: multi-producer senders that
//! are `Send + Sync + Clone`, FIFO per sender, and disconnection errors
//! when the other side is dropped.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPSC channels with the crossbeam-channel API shape.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                SenderKind::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn senders_are_sync_and_clone() {
        fn assert_sync<T: Sync + Send + Clone>(_: &T) {}
        let (tx, rx) = channel::unbounded::<u8>();
        assert_sync(&tx);
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn disconnection_reported() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
