//! Minimal offline stand-in for `parking_lot`.
//!
//! [`Mutex`] and [`Condvar`] over their `std::sync` counterparts, with
//! parking_lot's API shape: `lock()` returns the guard directly (a
//! poisoned std lock is recovered transparently — parking_lot has no
//! poisoning), and `Condvar::wait` takes the guard by `&mut`.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// reacquiring before returning (parking_lot shape: guard by `&mut`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Like [`wait`](Condvar::wait), but gives up after `timeout`.
    /// Returns `true` if the wait timed out (parking_lot's
    /// `WaitTimeoutResult::timed_out` collapsed to a bool).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self.inner.wait_timeout(inner, timeout).unwrap_or_else(|e| {
            let (g, r) = e.into_inner();
            (g, r)
        });
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
