//! Collection strategies (`proptest::collection::vec`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
