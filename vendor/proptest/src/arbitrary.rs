//! `any::<T>()` over primitive types.

use std::fmt;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
