//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_filter` / `prop_filter_map` / `prop_flat_map` /
//! `boxed`, strategies for integer and float ranges, tuples, `Vec`s and
//! [`collection::vec`], [`any`](arbitrary::any) over primitive types,
//! [`Just`](strategy::Just), weighted [`prop_oneof!`], and the
//! [`proptest!`] / `prop_assert*!` / [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the `Debug` rendering
//!   of its inputs instead of a minimised counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed seed hashed
//!   with the test name, so every run explores the same inputs.
//! * Default `cases` is 64 (upstream: 256) to keep `cargo test` quick.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs one named property test: `proptest!` expands to calls of this.
///
/// Not public API in upstream proptest; kept in the crate root so the
/// macros can reach it via `$crate`.
#[doc(hidden)]
pub fn __run_cases<S, F>(config: test_runner::ProptestConfig, name: &str, strategy: &S, mut test: F)
where
    S: strategy::Strategy,
    F: FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::{TestCaseError, TestRng};

    let mut rng = TestRng::for_test(name);
    let mut rejections = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let Some(value) = strategy.generate(&mut rng) else {
            rejections += 1;
            assert!(
                rejections < config.cases.saturating_mul(256).max(4096),
                "proptest stub: too many strategy rejections in `{name}`"
            );
            continue;
        };
        let rendered = format!("{value:?}");
        match test(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejections += 1;
                assert!(
                    rejections < config.cases.saturating_mul(256).max(4096),
                    "proptest stub: too many prop_assume rejections in `{name}`"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed: {msg}\n  test: {name}\n  input: {rendered}")
            }
        }
    }
}

/// The main property-test macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                $crate::__run_cases(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |($($pat,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure fails the case (no panic
/// mid-shrink in upstream; here it simply reports the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted or unweighted union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
