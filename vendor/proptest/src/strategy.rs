//! The [`Strategy`] trait and its combinators.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// `generate` returns `None` when the drawn value is locally rejected
/// (e.g. by `prop_filter`); the runner then retries the whole case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (`reason` is for diagnostics).
    fn prop_filter<F>(self, _reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Combined filter + map: `None` rejects the draw.
    fn prop_filter_map<U, F>(self, _reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Derives a second strategy from each drawn value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe generation facet backing [`BoxedStrategy`].
trait ObjStrategy {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Option<Self::Value>;
}

impl<S: Strategy> ObjStrategy for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn ObjStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate_obj(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Weighted union over strategies of one value type ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof!
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `entries` is empty or all weights are zero.
    pub fn weighted(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = entries.iter().map(|&(w, _)| w).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { entries, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.entries {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Scale a 53-bit draw over [0, 1] inclusively.
        let unit = rng.below((1u64 << 53) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        Some(lo + unit * (hi - lo))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// One independent draw per element (proptest's `Vec<S>` strategy).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
