//! Test-runner types: config, RNG, case errors.

use std::fmt;

/// Per-test configuration (subset of upstream `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for upstream compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; this stub never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; fails the whole test.
    Fail(String),
    /// The case's inputs were rejected (`prop_assume!`); retried.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (to be retried) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Deterministic SplitMix64 generator feeding all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
