//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer whose
//! clones share one allocation (`Arc<[u8]>`), matching the property the
//! workspace relies on — forwarding a block through a channel transport
//! must not copy the payload. [`Bytes::slice`] produces a sub-view that
//! keeps sharing the same allocation, which is what lets the wire codec
//! hand out block payloads without copying them out of the receive
//! buffer.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// A `Bytes` is a `(allocation, offset, len)` view: clones and
/// [`slice`](Bytes::slice)s share the allocation and only adjust the
/// window, so neither ever copies payload bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes {
            data,
            offset: 0,
            len,
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Wraps a static slice (copied once into a shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Copies a slice into a new shared allocation.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contents as a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching the
    /// real `bytes` crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.checked_add(1).expect("slice start overflows"),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("slice end overflows"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of len {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slicing_and_eq() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![b'a', b'b', b'c']);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = a.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        // The sub-view points into the same allocation, offset by two.
        assert_eq!(mid.as_ptr(), a[2..].as_ptr());
        // Slicing a slice composes offsets.
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_ptr(), a[3..].as_ptr());
    }

    #[test]
    fn slice_full_and_empty_ranges() {
        let a = Bytes::from(vec![7u8; 4]);
        assert_eq!(a.slice(..), a);
        assert!(a.slice(4..4).is_empty());
        assert_eq!(a.slice(..=1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![0u8; 3]).slice(1..5);
    }

    #[test]
    fn sub_view_equality_and_hash_use_the_window() {
        let a = Bytes::from(vec![9u8, 1, 2, 9]);
        let b = a.slice(1..3);
        assert_eq!(b, Bytes::from(vec![1u8, 2]));
        assert_eq!(b.to_vec(), vec![1, 2]);
    }
}
