//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer whose
//! clones share one allocation (`Arc<[u8]>`), matching the property the
//! workspace relies on — forwarding a block through a channel transport
//! must not copy the payload.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copied once into a shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new shared allocation.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slicing_and_eq() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![b'a', b'b', b'c']);
    }
}
