//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the API the workspace's benches use:
//! [`Criterion`], benchmark groups with [`Throughput`] and
//! [`BenchmarkId`], `Bencher::iter`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up, then batches of
//! iterations until ~`measurement_millis` of wall clock is consumed
//! (bounded by `sample_size` batches); mean and best per-iteration times
//! plus derived throughput go to stdout as plain text. No statistics,
//! no HTML report. Like upstream, bench bodies only execute when the
//! binary is run in `--bench` mode, so `cargo test` merely type-checks
//! bench targets.
//!
//! # Machine-readable output (extension)
//!
//! When the `TQ_BENCH_JSON` environment variable names a file path,
//! [`criterion_main!`] finishes by writing every measurement of the run
//! as a JSON array of `{id, mean_ns, best_ns, bytes?, bytes_per_sec?,
//! elements?, elements_per_sec?}` records to that path — the hook the
//! repo's `BENCH_*.json` perf-trajectory artefacts are produced through.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a measurement is normalised by when reporting throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Total time and iteration count accumulated by `iter`.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` on fresh `setup()` output each iteration; only the
    /// routine is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = per_batch;
        let deadline = Instant::now() + Duration::from_millis(60);
        while self.samples.len() < 50 && Instant::now() < deadline {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Runs `f` repeatedly, timing batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: target ~1ms per batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = per_batch;
        let deadline = Instant::now() + Duration::from_millis(60);
        while self.samples.len() < 50 && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// One finished measurement, kept for the JSON report.
struct Record {
    id: String,
    mean_ns: f64,
    best_ns: f64,
    throughput: Option<Throughput>,
}

/// Every measurement of the process, in execution order.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Writes the run's records as a JSON array to `$TQ_BENCH_JSON`, if set.
/// Called by [`criterion_main!`] after all groups have run; public so
/// custom `main`s can invoke it too.
pub fn write_json_report() {
    let Ok(path) = std::env::var("TQ_BENCH_JSON") else {
        return;
    };
    let records = RECORDS.lock().expect("bench record registry");
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"best_ns\": {:.1}",
            r.id.replace('"', "\\\""),
            r.mean_ns,
            r.best_ns
        ));
        match r.throughput {
            Some(Throughput::Bytes(b)) => out.push_str(&format!(
                ", \"bytes\": {b}, \"bytes_per_sec\": {:.0}",
                b as f64 / r.mean_ns * 1e9
            )),
            Some(Throughput::Elements(e)) => out.push_str(&format!(
                ", \"elements\": {e}, \"elements_per_sec\": {:.0}",
                e as f64 / r.mean_ns * 1e9
            )),
            None => {}
        }
        out.push_str(&format!("}}{sep}\n"));
    }
    out.push_str("]\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("TQ_BENCH_JSON: cannot write {path}: {err}");
    }
}

/// Records an externally-measured result so it joins the run's stdout
/// listing and the `$TQ_BENCH_JSON` report. Open-loop load harnesses
/// measure latency distributions themselves instead of timing a closure
/// through [`Bencher::iter`]; this is their entry into the same
/// reporting pipeline (extension, not upstream API).
pub fn record_measurement(id: &str, mean_ns: f64, best_ns: f64, throughput: Option<Throughput>) {
    RECORDS.lock().expect("bench record registry").push(Record {
        id: id.to_string(),
        mean_ns,
        best_ns,
        throughput,
    });
    let thr = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib = b as f64 / mean_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib:>8.3} GiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let meps = e as f64 / mean_ns * 1e9 / 1e6;
            format!("  {meps:>8.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{id:<48} mean {:>10}  best {:>10}{thr}",
        fmt_duration(mean_ns),
        fmt_duration(best_ns)
    );
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / bencher.iters_per_sample as f64;
    let best = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    RECORDS.lock().expect("bench record registry").push(Record {
        id: id.to_string(),
        mean_ns: mean,
        best_ns: best,
        throughput,
    });
    let thr = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib = b as f64 / mean * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib:>8.3} GiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let meps = e as f64 / mean * 1e9 / 1e6;
            format!("  {meps:>8.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{id:<48} mean {:>10}  best {:>10}{thr}",
        fmt_duration(mean),
        fmt_duration(best)
    );
}

/// The benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; under `cargo test`
        // that flag is absent and benches are skipped (upstream behaviour).
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Upstream builder hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        run_one(self.bench_mode, &id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let bench_mode = self.bench_mode;
        BenchmarkGroup {
            _criterion: self,
            bench_mode,
            name: name.into(),
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !bench_mode {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    report(id, &bencher, throughput);
}

/// A group of benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    bench_mode: bool,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput normalisation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for upstream compatibility; sampling here is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for upstream compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(self.bench_mode, &id, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(self.bench_mode, &id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; a no-op).
    pub fn finish(self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, then flushing the JSON
/// report if `TQ_BENCH_JSON` requests one.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
