//! Minimal offline stand-in for the `rand` crate (0.9 API names).
//!
//! Provides [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] and the
//! subset of [`Rng`] the workspace uses: `random_bool`, `random_range`,
//! `fill`. The generator is SplitMix64 — high-quality enough for
//! Monte-Carlo availability sampling, fully deterministic in its seed
//! (the stream differs from upstream `rand`, so absolute experiment
//! numbers are reproducible within this workspace only).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically seeds the generator from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `random_range` accepts (subset of `rand::distr::uniform`).
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

// Rejection-free Lemire-style bounded draw: take the high 64 bits of a
// 128-bit product. Bias is < 2^-64 per draw — immaterial for simulation.
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, exactly the precision of f64 in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw from a range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    ///
    /// Passes BigCrush-level statistical scrutiny for the 64-bit stream
    /// and needs only one word of state; deterministic in its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..9);
            assert!((5..9).contains(&v));
            let w = rng.random_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
