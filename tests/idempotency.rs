//! Property tests for the idempotent node command API.
//!
//! The claim the API makes (`tq_cluster::rpc` module docs): executing
//! any envelope any number of times, interleaved arbitrarily with other
//! commands, leaves node state as if every envelope executed exactly
//! once. Two properties pin it down:
//!
//! * **In-order at-least-once ≡ exactly-once.** Deliver a valid command
//!   history in issue order, but duplicate each envelope 1–3 times and
//!   re-inject stale copies of arbitrary earlier envelopes at arbitrary
//!   later points (the cross-round redelivery shape). Final node state
//!   must equal exactly-once in-order delivery.
//! * **Arbitrary interleaving ≡ some exactly-once delivery.** Shuffle
//!   the whole multiset of deliveries (duplicates included) into any
//!   order. The final state must equal delivering each envelope **at
//!   most once** — at its first *successful* application point, in the
//!   same order (envelopes that never succeeded are dropped: failures
//!   have no side effects). A redelivery may legitimately succeed where
//!   an out-of-order first attempt was rejected — that is at-least-once
//!   retry converging — but no envelope's effect is ever applied twice.
//!
//! Both properties hold because every mutation is monotone conditional
//! (versions never regress; stale deliveries ack idempotently) and the
//! node's applied-op window absorbs exact replays of the one
//! non-idempotent primitive, the parity delta fold.

use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapezoid_quorum::cluster::rpc::NodeApi;
use trapezoid_quorum::cluster::{Envelope, NodeId, Request, Response, StorageNode};

const LEN: usize = 16;
const DATA_ID: u64 = 1;
const PARITY_ID: u64 = 2;
const K: usize = 2;

fn pattern(tag: u64) -> Bytes {
    Bytes::from(
        (0..LEN)
            .map(|i| (tag as u8).wrapping_add(i as u8))
            .collect::<Vec<u8>>(),
    )
}

/// Builds a valid sequential command history against one node that
/// holds a data block and a parity block: creates, then an interleaving
/// of data writes (versions ascending) and per-index parity fold chains.
/// `mix` drives the interleaving deterministically.
fn history(writes: u64, folds: [u64; K], mix: u64) -> Vec<Envelope> {
    let mut rng = StdRng::seed_from_u64(mix);
    let mut ops = vec![
        Envelope::new(Request::InitData {
            id: DATA_ID,
            bytes: pattern(0),
        }),
        Envelope::new(Request::InitParity {
            id: PARITY_ID,
            bytes: pattern(100),
            k: K,
            checks: vec![],
        }),
    ];
    let mut next_write = 1u64;
    let mut next_fold = [1u64; K];
    loop {
        // Candidate streams that still have commands to issue.
        let mut candidates: Vec<usize> = Vec::new();
        if next_write <= writes {
            candidates.push(0);
        }
        for i in 0..K {
            if next_fold[i] <= folds[i] {
                candidates.push(1 + i);
            }
        }
        if candidates.is_empty() {
            break;
        }
        match candidates[rng.random_range(0..candidates.len())] {
            0 => {
                ops.push(Envelope::new(Request::WriteData {
                    id: DATA_ID,
                    bytes: pattern(next_write),
                    version: next_write,
                }));
                next_write += 1;
            }
            stream => {
                let i = stream - 1;
                let v = next_fold[i];
                ops.push(Envelope::new(Request::AddParity {
                    id: PARITY_ID,
                    block_index: i,
                    delta: pattern(200 + (i as u64) * 64 + v),
                    expected_version: v - 1,
                    new_version: v,
                    coeff: 1,
                    new_check: None,
                }));
                next_fold[i] += 1;
            }
        }
    }
    ops
}

/// Observable node state: both blocks read back through the payload API.
fn observe(node: &StorageNode) -> (Result<Response, String>, Result<Response, String>) {
    let read = |req: Request| {
        node.execute(Envelope::new(req))
            .result
            .map_err(|e| e.to_string())
    };
    (
        read(Request::ReadData { id: DATA_ID }),
        read(Request::ReadParity { id: PARITY_ID }),
    )
}

/// Applies a delivery schedule (a sequence of envelope clones) to a
/// fresh node and returns its final observable state.
fn deliver(schedule: &[Envelope]) -> (Result<Response, String>, Result<Response, String>) {
    let node = StorageNode::new(NodeId(0));
    for env in schedule {
        let reply = node.execute(env.clone());
        assert_eq!(reply.op_id, env.op_id, "replies echo command identity");
    }
    observe(&node)
}

proptest! {
    /// In-order first deliveries + arbitrary duplicates and stale
    /// redeliveries ≡ exactly-once in-order delivery.
    #[test]
    fn at_least_once_in_order_equals_exactly_once(
        writes in 1u64..=8,
        folds_a in 0u64..=5,
        folds_b in 0u64..=5,
        mix in any::<u64>(),
        chaos in any::<u64>(),
    ) {
        let ops = history(writes, [folds_a, folds_b], mix);
        let exactly_once = deliver(&ops);

        // Duplicate each delivery 1..=3 times in place, and after each
        // position maybe re-inject stale copies of arbitrary earlier
        // envelopes (the cross-round redelivery shape).
        let mut rng = StdRng::seed_from_u64(chaos);
        let mut schedule: Vec<Envelope> = Vec::new();
        for (idx, env) in ops.iter().enumerate() {
            for _ in 0..rng.random_range(1..=3usize) {
                schedule.push(env.clone());
            }
            for _ in 0..rng.random_range(0..=2usize) {
                let stale = rng.random_range(0..=idx);
                schedule.push(ops[stale].clone());
            }
        }
        // A tail of stale redeliveries in arbitrary order.
        for _ in 0..rng.random_range(0..=ops.len()) {
            let stale = rng.random_range(0..ops.len());
            schedule.push(ops[stale].clone());
        }

        let at_least_once = deliver(&schedule);
        prop_assert_eq!(at_least_once, exactly_once);
    }

    /// Any interleaving with duplicates ≡ exactly-once delivery of each
    /// envelope's first *successful* application, in the same order: no
    /// envelope's effect is ever applied twice, and failed deliveries
    /// leave no trace.
    #[test]
    fn any_interleaving_equals_an_exactly_once_delivery(
        writes in 1u64..=8,
        folds_a in 0u64..=5,
        folds_b in 0u64..=5,
        mix in any::<u64>(),
        chaos in any::<u64>(),
    ) {
        let ops = history(writes, [folds_a, folds_b], mix);
        let mut rng = StdRng::seed_from_u64(chaos);

        // Multiset: each envelope 1..=3 times, then a full shuffle.
        let mut schedule: Vec<Envelope> = Vec::new();
        for env in &ops {
            for _ in 0..rng.random_range(1..=3usize) {
                schedule.push(env.clone());
            }
        }
        for i in (1..schedule.len()).rev() {
            let j = rng.random_range(0..=i);
            schedule.swap(i, j);
        }

        // Run the full chaotic schedule, recording which delivery was
        // each envelope's first success.
        let node = StorageNode::new(NodeId(0));
        let mut succeeded = std::collections::HashSet::new();
        let mut effective: Vec<Envelope> = Vec::new();
        for env in &schedule {
            let reply = node.execute(env.clone());
            prop_assert_eq!(reply.op_id, env.op_id);
            if reply.result.is_ok() && succeeded.insert(env.op_id) {
                effective.push(env.clone());
            }
        }

        // The exactly-once reference: each envelope at most once.
        prop_assert_eq!(observe(&node), deliver(&effective));
    }
}

/// Beyond equivalence: after an in-order at-least-once run, the state is
/// exactly the sequential ground truth (last write's bytes and version,
/// full fold chains in the vector).
#[test]
fn converged_state_matches_ground_truth() {
    let ops = history(5, [3, 2], 42);
    let mut schedule = Vec::new();
    for env in &ops {
        schedule.push(env.clone());
        schedule.push(env.clone()); // duplicate everything once
    }
    for env in ops.iter().rev() {
        schedule.push(env.clone()); // then replay the lot backwards
    }
    let (data, parity) = deliver(&schedule);
    match data.unwrap() {
        Response::Data { bytes, version, .. } => {
            assert_eq!(version, 5);
            assert_eq!(bytes, pattern(5));
        }
        other => panic!("unexpected {other:?}"),
    }
    match parity.unwrap() {
        Response::Parity { versions, .. } => assert_eq!(versions, vec![3, 2]),
        other => panic!("unexpected {other:?}"),
    }
}
