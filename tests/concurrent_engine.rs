//! Engine-level concurrency tests: the scatter-gather quorum rounds
//! under a truly concurrent transport, with fault injection.
//!
//! The unit tests pin the engine's semantics on `LocalTransport` (where
//! dispatch is deterministic); these tests close the remaining gap —
//! many protocol threads interleaving on one `ChannelTransport`, nodes
//! crashing and reviving mid-traffic, and rounds that must complete
//! despite dead or slow members.

use std::sync::Arc;
use std::time::{Duration, Instant};

use trapezoid_quorum::cluster::ChannelTransport;
use trapezoid_quorum::protocol::StripeLockManager;
use trapezoid_quorum::{Cluster, ProtocolConfig, TrapErcClient};

const BLOCK_LEN: usize = 64;

fn config_15_8() -> ProtocolConfig {
    ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap()
}

fn blocks(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|b| seed.wrapping_mul(31) ^ (i * 41 + b * 7) as u8)
                .collect()
        })
        .collect()
}

/// Concurrent interleaved writes to *different blocks of one stripe*
/// through the concurrent transport: every write fans out over the
/// block's trapezoid, parity nodes serve folds for all blocks at once,
/// and per-block version guards keep the stripe consistent.
#[test]
fn concurrent_interleaved_writes_to_one_stripe() {
    const WRITERS: usize = 4;
    const ROUNDS: u64 = 12;

    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::new(cluster.clone()));
    let client = Arc::new(TrapErcClient::new(config_15_8(), transport).unwrap());
    client.create_stripe(1, blocks(8, BLOCK_LEN, 1)).unwrap();

    let handles: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                // Writer w owns blocks w and w + 4: disjoint write sets,
                // shared parity nodes.
                for round in 1..=ROUNDS {
                    for &block in &[writer, writer + 4] {
                        let payload = vec![(writer as u8) << 4 | round as u8; BLOCK_LEN];
                        let out = client.write_block(1, block, &payload).unwrap();
                        assert_eq!(out.version, round, "writer {writer} block {block}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every block settles on its writer's final payload at the final
    // version, and the decode path agrees with the direct path.
    for block in 0..8 {
        let writer = (block % 4) as u8;
        let expect = vec![writer << 4 | ROUNDS as u8; BLOCK_LEN];
        let direct = client.read_block(1, block).unwrap();
        assert_eq!(direct.version, ROUNDS);
        assert_eq!(direct.bytes, expect, "block {block} direct");
        cluster.kill(block);
        let decoded = client.read_block(1, block).unwrap();
        assert_eq!(decoded.bytes, expect, "block {block} decoded");
        assert!(decoded.decoded());
        cluster.revive(block);
    }
}

/// Write-write races on the *same block* are outside the paper's scope
/// (§I defers to "classical ways"); under the lock manager the engine's
/// concurrent rounds must still serialise cleanly.
#[test]
fn locked_same_block_writers_serialise_over_channel_transport() {
    const WRITERS: usize = 6;
    const PER_WRITER: usize = 8;

    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::new(cluster));
    let client = Arc::new(TrapErcClient::new(config_15_8(), transport).unwrap());
    client.create_stripe(1, blocks(8, BLOCK_LEN, 2)).unwrap();
    let locks = StripeLockManager::new();

    let handles: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let client = Arc::clone(&client);
            let locks = Arc::clone(&locks);
            std::thread::spawn(move || {
                for round in 0..PER_WRITER {
                    let payload = vec![(writer * 16 + round) as u8; BLOCK_LEN];
                    client.write_block_locked(&locks, 1, 3, &payload).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let out = client.read_block(1, 3).unwrap();
    assert_eq!(
        out.version,
        (WRITERS * PER_WRITER) as u64,
        "every write got a distinct serialised version"
    );
    assert!(
        out.bytes.windows(2).all(|w| w[0] == w[1]),
        "no torn write: a single writer's payload survived"
    );
    assert_eq!(locks.held_count(), 0);
}

/// A crashed node inside a level must not stall a round that can still
/// reach `w_l`: every member (the dead one included — workers apply the
/// injected service delay before answering `Down`) costs one delay, so
/// both the version-check round (first-quorum) and the write round
/// (await-all) complete on the fan-out timescale of ~one delay per
/// level, far under the sequential sum over members.
#[test]
fn crashed_node_does_not_stall_reachable_quorum() {
    // Generous margins against the *sequential* cost so a loaded CI
    // runner cannot flake the test: a sequential walk of the write costs
    // 8 member-delays (200ms) and the structural asserts are primary.
    let delay = Duration::from_millis(25);
    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::with_latency(
        cluster.clone(),
        &vec![delay; 15],
    ));
    let client = TrapErcClient::new(config_15_8(), Arc::clone(&transport)).unwrap();
    client.create_stripe(1, blocks(8, BLOCK_LEN, 3)).unwrap();

    // Parity node 9 sits in level 0 of block 0's trapezoid ({0, 8, 9,
    // 10}) and in every other block's level 0 too. Kill it.
    cluster.kill(9);

    // Writes still reach w_0 = 3 of {0, 8, 10} and w_1 = 2 of {11..14};
    // await-all costs ~1 round trip per level, NOT the sum over members
    // and NOT a timeout on the dead node.
    let start = Instant::now();
    let w = client.write_block_with_hint(1, 0, &[7u8; BLOCK_LEN], &blocks(8, BLOCK_LEN, 3)[0], 0);
    let write_elapsed = start.elapsed();
    let w = w.unwrap();
    assert!(!w.validated.contains(&9));
    assert_eq!(w.validated.len(), 7, "all live members validated");
    assert!(
        write_elapsed < delay * 6,
        "write stalled: {write_elapsed:?} for 2 levels of {delay:?} nodes"
    );

    // Reads: the version check needs r_0 = 2 answers; the dead node's
    // `Down` (after its one service delay, like any member) must not
    // block completion either.
    let start = Instant::now();
    let r = client.read_block(1, 0).unwrap();
    let read_elapsed = start.elapsed();
    assert_eq!(r.version, 1);
    assert_eq!(r.bytes, vec![7u8; BLOCK_LEN]);
    assert!(
        read_elapsed < delay * 8,
        "read stalled: {read_elapsed:?} with one dead level-0 member"
    );
}

/// Fault churn during concurrent traffic: parity nodes crash and revive
/// while writers hammer the stripe. Writes may fail (no quorum at that
/// moment) but must never stall, and after healing + scrub every block
/// reads back a value some writer actually wrote.
#[test]
fn fault_churn_under_concurrent_writes_settles_clean() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 10;

    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::new(cluster.clone()));
    let client = Arc::new(TrapErcClient::new(config_15_8(), transport).unwrap());
    let initial = blocks(8, BLOCK_LEN, 4);
    client.create_stripe(1, initial.clone()).unwrap();

    let chaos_cluster = cluster.clone();
    let chaos = std::thread::spawn(move || {
        // Bounded churn: at most two parity nodes down at once, well
        // within the (15, 8) code's n − k = 7 tolerance.
        for round in 0..24usize {
            let a = 8 + round % 7;
            let b = 8 + (round + 3) % 7;
            chaos_cluster.kill(a);
            chaos_cluster.kill(b);
            std::thread::sleep(Duration::from_millis(2));
            chaos_cluster.revive(a);
            chaos_cluster.revive(b);
        }
    });

    let handles: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut committed = Vec::new();
                for round in 0..ROUNDS {
                    for &block in &[writer, writer + 4] {
                        let payload = vec![(writer * 32 + round + 1) as u8; BLOCK_LEN];
                        // Failures are legitimate under churn; committed
                        // writes are remembered for the audit.
                        if client.write_block(1, block, &payload).is_ok() {
                            committed.push((block, payload));
                        }
                    }
                }
                committed
            })
        })
        .collect();
    let mut committed: Vec<(usize, Vec<u8>)> = Vec::new();
    for h in handles {
        committed.extend(h.join().unwrap());
    }
    chaos.join().unwrap();

    // Heal, scrub, audit: every block settles on its initial content, a
    // committed write, or (failed-write residue) any value that writer
    // attempted — never garbage.
    for n in 0..15 {
        cluster.revive(n);
    }
    client.scrub_stripe(1).unwrap();
    for (block, created) in initial.iter().enumerate() {
        let out = client.read_block(1, block).unwrap();
        let writer = block % 4;
        let mut attempted =
            (0..ROUNDS).map(|round| vec![(writer * 32 + round + 1) as u8; BLOCK_LEN]);
        let plausible = out.bytes == *created || attempted.any(|p| p == out.bytes);
        assert!(
            plausible,
            "block {block} settled on a never-written value: {:?}",
            &out.bytes[..4]
        );
    }
}
