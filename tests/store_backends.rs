//! The unified-store contract, enforced across all four protocols: the
//! same create → write_batch → fail-nodes → read_batch → scrub scenario
//! runs over every `Box<dyn QuorumStore>` backend on the concurrent
//! `ChannelTransport`, and the observable outcomes (bytes, versions,
//! success patterns) must agree — that is what makes the paper's
//! cross-protocol comparison meaningful.
//!
//! The batching acceptance criterion is asserted here too: a batch of m
//! blocks reports *fused* per-level rounds (flat in m), not m
//! independent per-op round sequences.

use trapezoid_quorum::cluster::ChannelTransport;
use trapezoid_quorum::{BatchWrite, BlockAddr, Cluster, QuorumStore, Store};

const K: usize = 8;
const BLOCK_LEN: usize = 64;
const STRIPE: u64 = 1;

/// One backend under test: its name, the store as a trait object, and
/// the cluster handle for fault injection.
fn backends() -> Vec<(&'static str, Box<dyn QuorumStore>, Cluster)> {
    let mut out: Vec<(&'static str, Box<dyn QuorumStore>, Cluster)> = Vec::new();
    {
        let cluster = Cluster::new(15);
        let store = Store::trap_erc(15, K)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(ChannelTransport::new(cluster.clone()))
            .build()
            .expect("valid trap-erc parameters");
        out.push(("trap-erc", store, cluster));
    }
    {
        let cluster = Cluster::new(15);
        let store = Store::trap_fr(15, K)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(ChannelTransport::new(cluster.clone()))
            .build()
            .expect("valid trap-fr parameters");
        out.push(("trap-fr", store, cluster));
    }
    {
        let cluster = Cluster::new(15);
        let store = Store::rowa(15)
            .transport(ChannelTransport::new(cluster.clone()))
            .build()
            .expect("valid rowa parameters");
        out.push(("rowa", store, cluster));
    }
    {
        let cluster = Cluster::new(15);
        let store = Store::majority(15)
            .transport(ChannelTransport::new(cluster.clone()))
            .build()
            .expect("valid majority parameters");
        out.push(("majority", store, cluster));
    }
    out
}

fn payload(block: usize, round: u8) -> Vec<u8> {
    vec![(round << 4) | block as u8; BLOCK_LEN]
}

/// What one backend observed over the scenario: `(bytes, version)` per
/// block, for cross-backend diffing.
type Observations = Vec<(Vec<u8>, u64)>;

/// The full scenario, identical over every backend; returns the
/// `(bytes, version)` observations so the caller can diff backends.
fn run_scenario(name: &str, store: &dyn QuorumStore, cluster: &Cluster) -> Observations {
    let addrs: Vec<BlockAddr> = (0..K).map(|b| BlockAddr::new(STRIPE, b)).collect();

    // Provision k blocks (one real stripe on TRAP-ERC, k replicated
    // objects elsewhere — one namespace either way).
    let initial: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 0)).collect();
    store
        .create(STRIPE, initial)
        .unwrap_or_else(|e| panic!("{name}: create failed: {e}"));

    // Batched write of every block while healthy.
    let payloads: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 1)).collect();
    let items: Vec<BatchWrite> = addrs
        .iter()
        .zip(&payloads)
        .map(|(&addr, p)| BatchWrite::new(addr, p))
        .collect();
    let batch = store.write_batch(&items);
    assert!(
        batch.all_ok(),
        "{name}: healthy write_batch must commit everywhere: {:?}",
        batch.outcomes
    );
    for out in &batch.outcomes {
        assert_eq!(out.as_ref().unwrap().version, 1, "{name}");
    }
    // The fused-rounds criterion: m = 8 blocks, yet the batch bill stays
    // flat — strictly fewer rounds than one per block, with every round
    // marked as carrying several fused ops.
    let rounds = batch.report.network_rounds();
    assert!(
        rounds < K,
        "{name}: write_batch of {K} blocks used {rounds} rounds — not fused"
    );
    assert!(
        batch.report.rounds.iter().any(|r| r.ops == K),
        "{name}: no round carried all {K} ops: {:?}",
        batch.report.rounds
    );
    // ... and a loop of single writes costs strictly more rounds.
    let second: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 2)).collect();
    let mut loop_rounds = 0;
    for (addr, p) in addrs.iter().zip(&second) {
        let out = store
            .write(*addr, p)
            .unwrap_or_else(|e| panic!("{name}: single write failed: {e}"));
        assert_eq!(out.version, 2, "{name}");
        loop_rounds += out.report.network_rounds();
    }
    assert!(
        rounds < loop_rounds,
        "{name}: batch used {rounds} rounds, loop used {loop_rounds}"
    );

    // Fail nodes: a data-carrying node and a high-level one. Every
    // backend must keep serving reads (ROWA by design, Majority with a
    // quorum, the trapezoids per their thresholds; TRAP-ERC decodes
    // block 3).
    cluster.kill(3);
    cluster.kill(12);
    let reads = store.read_batch(&addrs);
    assert!(
        reads.all_ok(),
        "{name}: reads must survive 2 failures: {:?}",
        reads.outcomes
    );
    assert!(
        reads.report.network_rounds() < 2 * K,
        "{name}: read_batch rounds not fused: {}",
        reads.report.network_rounds()
    );
    for (b, out) in reads.outcomes.iter().enumerate() {
        let out = out.as_ref().unwrap();
        assert_eq!(out.bytes, payload(b, 2), "{name}: block {b} stale");
        assert_eq!(out.version, 2, "{name}: block {b} version");
    }

    // Heal and scrub: stale/blank state is refreshed on every node.
    cluster.revive(3);
    cluster.revive(12);
    let scrub = store
        .scrub(STRIPE)
        .unwrap_or_else(|e| panic!("{name}: scrub failed: {e}"));
    assert_eq!(
        scrub.refreshed.len(),
        store.info().nodes,
        "{name}: a healed cluster refreshes every node: {:?}",
        scrub.refreshed
    );
    assert!(scrub.salvaged.is_empty(), "{name}: nothing was poisoned");

    // Post-scrub reads: every backend serves directly again, and writes
    // validate on the full membership (node 12 takes deltas again on
    // TRAP-ERC — the stale-parity trap the scrub exists for).
    let reads = store.read_batch(&addrs);
    assert!(reads.all_ok(), "{name}: post-scrub reads");
    let observations: Vec<(Vec<u8>, u64)> = reads
        .outcomes
        .into_iter()
        .map(|out| {
            let out = out.unwrap();
            assert!(!out.decoded(), "{name}: scrubbed stripe reads directly");
            (out.bytes, out.version)
        })
        .collect();

    let w = store
        .write(BlockAddr::new(STRIPE, 3), &payload(3, 3))
        .unwrap_or_else(|e| panic!("{name}: post-scrub write failed: {e}"));
    assert_eq!(w.version, 3, "{name}");
    observations
}

/// Runs the scenario over all four backends and asserts the observable
/// outcomes agree bit-for-bit.
#[test]
fn all_backends_agree_on_the_scenario() {
    let mut results: Vec<(&'static str, Observations)> = Vec::new();
    for (name, store, cluster) in backends() {
        results.push((name, run_scenario(name, store.as_ref(), &cluster)));
    }
    let (reference_name, reference) = &results[0];
    for (name, observations) in &results[1..] {
        assert_eq!(
            observations, reference,
            "{name} diverged from {reference_name}"
        );
    }
}

/// Trait-object dispatch details that the scenario doesn't pin down:
/// StoreInfo descriptors and storage-overhead ordering (eq. 14 vs 15).
#[test]
fn store_info_descriptors_are_coherent() {
    for (name, store, _cluster) in backends() {
        let info = store.info();
        assert_eq!(info.protocol, name);
        assert!(info.nodes >= 1);
        match name {
            "trap-erc" => {
                assert_eq!(info.stripe_width, Some(K));
                assert!(info.erasure_coded);
                assert!((info.storage_overhead - 15.0 / 8.0).abs() < 1e-12);
            }
            "trap-fr" => {
                assert_eq!(info.shape, Some((0, 4, 1)));
                assert!(!info.erasure_coded);
                assert!((info.storage_overhead - 8.0).abs() < 1e-12);
            }
            _ => {
                assert_eq!(info.shape, None);
                assert!((info.storage_overhead - 15.0).abs() < 1e-12);
            }
        }
    }
    // The paper's storage claim, readable straight off the descriptors:
    // ERC < FR < full replication.
    let overheads: Vec<f64> = backends()
        .iter()
        .map(|(_, s, _)| s.info().storage_overhead)
        .collect();
    assert!(overheads[0] < overheads[1]);
    assert!(overheads[1] < overheads[2]);
}

/// Invalid addresses error per item on every backend — single ops
/// return `Misconfigured` (never panic), and a mixed batch still serves
/// its valid items.
#[test]
fn out_of_range_blocks_error_per_item() {
    use trapezoid_quorum::ProtocolError;
    for (name, store, _cluster) in backends() {
        let initial: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 0)).collect();
        store.create(STRIPE, initial).unwrap();
        // Out of range for every backend: past k for TRAP-ERC, past the
        // flattened-namespace slot limit for the replication backends.
        let bad = BlockAddr::new(STRIPE, 1 << 20);
        assert!(
            matches!(store.read(bad), Err(ProtocolError::Misconfigured(_))),
            "{name}: single read must error, not panic"
        );
        assert!(
            matches!(
                store.write(bad, &payload(0, 1)),
                Err(ProtocolError::Misconfigured(_))
            ),
            "{name}: single write must error, not panic"
        );
        // Mixed batch: the invalid item fails alone.
        let good = BlockAddr::new(STRIPE, 0);
        let batch = store.read_batch(&[good, bad]);
        assert_eq!(
            batch.outcomes[0].as_ref().unwrap().bytes,
            payload(0, 0),
            "{name}: valid item must still be served"
        );
        assert!(
            matches!(batch.outcomes[1], Err(ProtocolError::Misconfigured(_))),
            "{name}"
        );
        let p = payload(0, 1);
        let batch = store.write_batch(&[BatchWrite::new(good, &p), BatchWrite::new(bad, &p)]);
        assert_eq!(batch.outcomes[0].as_ref().unwrap().version, 1, "{name}");
        assert!(
            matches!(batch.outcomes[1], Err(ProtocolError::Misconfigured(_))),
            "{name}"
        );
    }
}

/// Batch items fail *individually* — one dead data node fails exactly
/// the blocks that need it, per backend semantics, while the rest of the
/// fused batch commits.
#[test]
fn batch_failures_are_per_item() {
    for (name, store, cluster) in backends() {
        let initial: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 0)).collect();
        store.create(STRIPE, initial).unwrap();
        cluster.kill(0);
        let payloads: Vec<Vec<u8>> = (0..K).map(|b| payload(b, 1)).collect();
        let items: Vec<BatchWrite> = (0..K)
            .map(|b| BatchWrite::new(BlockAddr::new(STRIPE, b), payloads[b].as_slice()))
            .collect();
        let batch = store.write_batch(&items);
        match name {
            // ROWA: every write needs all replicas — all items fail.
            "rowa" => assert!(
                batch.outcomes.iter().all(|o| o.is_err()),
                "{name}: ROWA writes need every replica"
            ),
            // Majority and TRAP-FR tolerate the failure — all commit.
            "majority" | "trap-fr" => assert!(batch.all_ok(), "{name}"),
            // TRAP-ERC: node 0 carries block 0's data; with w_0 = 3 of
            // {0, 8, 9, 10} still reachable every block commits — but
            // block 0's copy lands only on parity. Reads prove it.
            "trap-erc" => {
                assert!(batch.all_ok(), "{name}");
                let out = store.read(BlockAddr::new(STRIPE, 0)).unwrap();
                assert!(out.decoded(), "{name}: block 0 must decode");
                assert_eq!(out.bytes, payloads[0]);
            }
            other => unreachable!("unknown backend {other}"),
        }
    }
}
