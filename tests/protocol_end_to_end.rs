//! Cross-crate integration: the full stack (GF(2⁸) → erasure codec →
//! quorum geometry → cluster substrate → TRAP-ERC protocol) exercised
//! end-to-end through both transports.

use trapezoid_quorum::cluster::{ChannelTransport, Transport};
use trapezoid_quorum::protocol::ReadPath;
use trapezoid_quorum::{Cluster, LocalTransport, ProtocolConfig, ProtocolError, TrapErcClient};

fn config_15_8() -> ProtocolConfig {
    ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).expect("valid parameters")
}

fn blocks(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|b| seed.wrapping_add((i * 37 + b * 11) as u8))
                .collect()
        })
        .collect()
}

/// The same scenario must behave identically through the synchronous
/// transport and the thread-per-node channel transport.
#[test]
fn transports_agree_on_protocol_behaviour() {
    fn run(transport: impl Transport, cluster: &Cluster) -> Vec<String> {
        let client = TrapErcClient::new(config_15_8(), transport).unwrap();
        let mut log = Vec::new();
        client.create_stripe(1, blocks(8, 64, 1)).unwrap();
        log.push("created".to_string());
        let w = client.write_block(1, 3, &[0xAA; 64]).unwrap();
        log.push(format!("write v{} n{}", w.version, w.validated.len()));
        cluster.kill(3);
        let r = client.read_block(1, 3).unwrap();
        log.push(format!("read v{} decoded={}", r.version, r.decoded()));
        cluster.kill(11);
        cluster.kill(12);
        cluster.kill(13);
        let e = client.write_block(1, 3, &[0xBB; 64]).unwrap_err();
        log.push(format!("write err: {e}"));
        for n in [3, 11, 12, 13] {
            cluster.revive(n);
        }
        let r = client.read_block(1, 3).unwrap();
        log.push(format!("read v{} decoded={}", r.version, r.decoded()));
        log
    }

    let c1 = Cluster::new(15);
    let local_log = run(LocalTransport::new(c1.clone()), &c1);
    let c2 = Cluster::new(15);
    let channel_log = run(ChannelTransport::new(c2.clone()), &c2);
    assert_eq!(local_log, channel_log);
}

/// Concurrent writers to *different* blocks of one stripe, through the
/// channel transport: parity columns are independent, so all writes must
/// commit and the stripe must stay consistent.
#[test]
fn concurrent_writers_different_blocks() {
    use std::sync::Arc;
    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::new(cluster.clone()));
    let client = Arc::new(TrapErcClient::new(config_15_8(), Arc::clone(&transport)).unwrap());
    client.create_stripe(1, blocks(8, 128, 9)).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                for round in 1..=5u64 {
                    let payload = vec![(i as u8) ^ (round as u8 * 17); 128];
                    let w = client.write_block(1, i, &payload).unwrap();
                    assert_eq!(w.version, round, "block {i} version must be monotone");
                }
                vec![(i as u8) ^ (5u8 * 17); 128]
            })
        })
        .collect();
    let finals: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every block reads back its writer's last payload, via direct reads.
    for (i, expect) in finals.iter().enumerate() {
        let r = client.read_block(1, i).unwrap();
        assert_eq!(&r.bytes, expect, "block {i}");
        assert_eq!(r.version, 5);
        assert_eq!(r.path, ReadPath::Direct);
    }
    // And the decode path agrees with the direct path for every block.
    for (i, expect) in finals.iter().enumerate() {
        cluster.kill(i);
        let r = client.read_block(1, i).unwrap();
        assert_eq!(&r.bytes, expect, "decoded block {i}");
        assert!(r.decoded());
        cluster.revive(i);
    }
}

/// Contending writers on the *same* block: the version guard serialises
/// parity folds, versions never regress, and the final state is one of
/// the contenders' payloads at a consistent version.
#[test]
fn concurrent_writers_same_block_stay_safe() {
    use std::sync::Arc;
    let cluster = Cluster::new(15);
    let transport = Arc::new(ChannelTransport::new(cluster.clone()));
    let client = Arc::new(TrapErcClient::new(config_15_8(), Arc::clone(&transport)).unwrap());
    client.create_stripe(1, blocks(8, 32, 2)).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut committed = 0usize;
                for round in 0..10u8 {
                    let payload = vec![t as u8 * 50 + round; 32];
                    if client.write_block(1, 0, &payload).is_ok() {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total >= 1, "at least one write must commit");

    // After the dust settles the stripe is scrubable and self-consistent.
    client.scrub_stripe(1).unwrap();
    let direct = client.read_block(1, 0).unwrap();
    assert_eq!(direct.path, ReadPath::Direct);
    cluster.kill(0);
    let decoded = client.read_block(1, 0).unwrap();
    assert!(decoded.decoded());
    assert_eq!(decoded.bytes, direct.bytes, "decode must agree with direct");
    assert_eq!(decoded.version, direct.version);
}

/// A long sequential history with scripted failures: every committed
/// write stays readable; every read returns the last committed-or-residue
/// value, never anything older or mixed.
#[test]
fn linearizable_single_client_history() {
    let cluster = Cluster::new(15);
    let client = TrapErcClient::new(config_15_8(), LocalTransport::new(cluster.clone())).unwrap();
    client.create_stripe(1, blocks(8, 64, 3)).unwrap();

    let mut last_plausible: Vec<Vec<Vec<u8>>> =
        (0..8).map(|i| vec![blocks(8, 64, 3)[i].clone()]).collect();
    let mut seed = 0xC0FFEEu64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    for step in 0..120 {
        // Mutate availability every few steps, keeping failures ≤ 3.
        if step % 6 == 0 {
            for n in 0..15 {
                cluster.revive(n);
            }
            for stripe_node in 0..(next() % 4) {
                cluster.kill(((next() >> 8) as usize + stripe_node as usize) % 15);
            }
        }
        let i = (next() % 8) as usize;
        let payload = vec![(next() >> 32) as u8; 64];
        match client.write_block(1, i, &payload) {
            Ok(_) => {
                // Committed: this is now the only acceptable value.
                last_plausible[i] = vec![payload];
            }
            Err(ProtocolError::WriteQuorumNotMet { .. }) => {
                // Residue may or may not surface later.
                last_plausible[i].push(payload);
            }
            Err(ProtocolError::OldValueUnreadable(_)) => {}
            Err(e) => panic!("unexpected write error: {e}"),
        }
        if let Ok(r) = client.read_block(1, i) {
            assert!(
                last_plausible[i].contains(&r.bytes),
                "step {step}: read returned a value that was never plausibly current"
            );
            // Observed values collapse the plausible set (reads are
            // repeatable until the next write).
            last_plausible[i] = vec![r.bytes];
        }
    }
}

/// Stripe-wide invariant after arbitrary committed work + scrub: the
/// stored parity equals a fresh encode of the stored data, on every node.
#[test]
fn scrub_restores_eq1_invariant_across_cluster() {
    let cluster = Cluster::new(15);
    let client = TrapErcClient::new(config_15_8(), LocalTransport::new(cluster.clone())).unwrap();
    client.create_stripe(1, blocks(8, 96, 5)).unwrap();

    // Interleave writes with failures so parity nodes diverge.
    for round in 0..12u8 {
        cluster.kill((round as usize) % 15);
        let _ = client.write_block(1, (round as usize * 5) % 8, &[round; 96]);
        cluster.revive((round as usize) % 15);
    }
    for n in 0..15 {
        cluster.revive(n);
    }
    client.scrub_stripe(1).unwrap();

    // Read back the post-scrub data blocks and verify eq. 1 on the wire:
    // every parity node's stored block equals the re-encoded value.
    let data: Vec<Vec<u8>> = (0..8)
        .map(|i| client.read_block(1, i).unwrap().bytes)
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let expect_parity = client.codec().encode(&refs);
    for (j, expect) in (8..15).zip(&expect_parity) {
        use trapezoid_quorum::cluster::{NodeId, Request, Response};
        let transport = LocalTransport::new(cluster.clone());
        match transport
            .call(NodeId(j), Request::ReadParity { id: 1 })
            .unwrap()
        {
            Response::Parity {
                bytes, versions, ..
            } => {
                assert_eq!(&bytes[..], expect.as_slice(), "parity node {j}");
                assert_eq!(versions.len(), 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// A health-flagged home node stays entirely off a read's critical
/// path: with the registry armed and `N_0` marked gray, reading block 0
/// skips the walk, probe and direct fetch and decodes from `k` healthy
/// members in a *single* round — the read costs exactly `k` wire
/// messages (plus any hedges the transport fires independently).
#[test]
fn straggler_home_node_is_read_around_in_one_round() {
    use trapezoid_quorum::cluster::HedgePolicy;

    let config = ProtocolConfig::with_uniform_w(9, 6, 2, 1, 1, 1).unwrap();
    let cluster = Cluster::new(9);
    let client = TrapErcClient::new(config, ChannelTransport::new(cluster.clone())).unwrap();
    client.create_stripe(1, blocks(6, 64, 9)).unwrap();
    let w = client.write_block(1, 0, &[0xC4; 64]).unwrap();

    // Teach the estimator a gray home node directly (deterministic —
    // no real sleeps): node 0 far past the straggler multiple of the
    // fleet median, everyone else warmed at a healthy baseline.
    let health = client.transport().health_registry();
    for node in 1..9 {
        for _ in 0..5 {
            health.record_sample(node, 100_000); // 100µs
        }
    }
    for _ in 0..10 {
        health.record_sample(0, 30_000_000); // 30ms
    }
    assert!(health.straggler(0), "gray node must be flagged");
    assert!(!health.straggler(1), "healthy node must not be flagged");

    // Dormant registry: the read still takes the seed's direct path.
    let before = client.transport().messages_sent();
    let read = client.read_block(1, 0).unwrap();
    assert_eq!(read.path, ReadPath::Direct);
    assert_eq!(read.bytes, vec![0xC4; 64]);

    // Armed: one salvage round of k shards, none of them from node 0.
    health.set_policy(HedgePolicy::P99);
    let before_msgs = client.transport().messages_sent();
    let before_hedges = health.hedge_counters().fired;
    let read = client.read_block(1, 0).unwrap();
    assert_eq!(read.bytes, vec![0xC4; 64]);
    assert_eq!(read.version, w.version);
    match &read.path {
        ReadPath::Decoded { nodes } => {
            assert_eq!(nodes.len(), 6);
            assert!(!nodes.contains(&0), "home node polled: {nodes:?}");
        }
        other => panic!("expected a decode-around, got {other:?}"),
    }
    let hedges = health.hedge_counters().fired - before_hedges;
    assert_eq!(
        client.transport().messages_sent() - before_msgs,
        6 + hedges,
        "salvage must cost exactly k messages (+ hedges)"
    );
    let _ = before;

    // The batch path reroutes identically.
    use trapezoid_quorum::protocol::BlockAddr;
    let batch = client.read_blocks(&[
        BlockAddr {
            stripe: 1,
            block: 0,
        },
        BlockAddr {
            stripe: 1,
            block: 3,
        },
    ]);
    let out = batch.outcomes[0].as_ref().unwrap();
    assert_eq!(out.bytes, vec![0xC4; 64]);
    assert!(matches!(&out.path, ReadPath::Decoded { nodes } if !nodes.contains(&0)));
    assert!(batch.outcomes[1].as_ref().unwrap().bytes.len() == 64);
}
