//! The sharded data plane end to end: `ShardMap` routing properties,
//! `ShardedStore` over every backend, and a multi-threaded `Volume`
//! stress with per-block linearity checked against the DST history
//! oracle.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use trapezoid_quorum::sim::dst::HistoryChecker;
use trapezoid_quorum::{
    BatchWrite, BlockAddr, Cluster, LocalTransport, ProtocolConfig, QuorumStore, ShardMap,
    ShardedStore, Store, TrapErcClient, Volume, VolumeConfig,
};

// ---------------------------------------------------------------------
// ShardMap routing properties.
// ---------------------------------------------------------------------

proptest! {
    /// Routing is total (never out of range) and stable (a rebuilt map
    /// with the same parameters routes every stripe identically).
    #[test]
    fn hashed_routing_is_total_and_stable(
        shards in 1usize..=32,
        seed in any::<u64>(),
    ) {
        let map = ShardMap::hashed(shards).unwrap();
        let again = ShardMap::hashed(shards).unwrap();
        for i in 0..512u64 {
            let stripe = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let shard = map.shard_of(stripe);
            prop_assert!(shard < shards, "stripe {stripe} routed to {shard}/{shards}");
            prop_assert_eq!(shard, map.shard_of(stripe), "routing is deterministic");
            prop_assert_eq!(shard, again.shard_of(stripe), "routing is parameter-stable");
        }
    }

    /// Hashed routing balances sequential stripe ids: over `4096 · S`
    /// consecutive stripes no shard strays far from the mean.
    #[test]
    fn hashed_routing_balances_sequential_stripes(
        shards in 1usize..=16,
        base in 0u64..1_000_000,
    ) {
        let map = ShardMap::hashed(shards).unwrap();
        let mut counts = vec![0u64; shards];
        let per_shard = 4096u64;
        for stripe in base..base + per_shard * shards as u64 {
            counts[map.shard_of(stripe)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(
            max as f64 <= 1.5 * min.max(1) as f64,
            "imbalanced hashed routing: {counts:?}"
        );
    }

    /// Ranged routing is exactly balanced over aligned ranges and keeps
    /// each contiguous run of `stripes_per_shard` ids on one shard.
    #[test]
    fn ranged_routing_is_contiguous_and_exact(
        shards in 1usize..=8,
        stripes_per_shard in 1u64..=64,
    ) {
        let map = ShardMap::ranged(shards, stripes_per_shard).unwrap();
        let mut counts = vec![0u64; shards];
        for stripe in 0..stripes_per_shard * shards as u64 {
            let shard = map.shard_of(stripe);
            prop_assert_eq!(
                shard,
                (stripe / stripes_per_shard) as usize % shards,
                "range layout"
            );
            counts[shard] += 1;
        }
        prop_assert!(
            counts.iter().all(|&c| c == stripes_per_shard),
            "aligned ranges split exactly: {counts:?}"
        );
    }
}

// ---------------------------------------------------------------------
// ShardedStore over every backend.
// ---------------------------------------------------------------------

/// A sharded store over boxed backends, plus its label and stripe width.
type LabeledShardedStore = (&'static str, ShardedStore<Box<dyn QuorumStore>>, usize);

/// One sharded instance per protocol: three independent groups (each its
/// own cluster), hashed routing, parallel batch fan-out.
fn sharded_backends() -> Vec<LabeledShardedStore> {
    let build = |f: &dyn Fn() -> Box<dyn QuorumStore>| {
        let shards: Vec<Box<dyn QuorumStore>> = (0..3).map(|_| f()).collect();
        ShardedStore::new(shards, ShardMap::hashed(3).unwrap()).unwrap()
    };
    vec![
        (
            "trap-erc",
            build(&|| {
                Store::trap_erc(9, 6)
                    .shape(2, 1, 1)
                    .uniform_w(2)
                    .transport(LocalTransport::new(Cluster::new(9)))
                    .build()
                    .unwrap()
            }),
            6,
        ),
        (
            "trap-fr",
            build(&|| {
                Store::trap_fr(9, 6)
                    .shape(2, 1, 1)
                    .uniform_w(2)
                    .transport(LocalTransport::new(Cluster::new(9)))
                    .build()
                    .unwrap()
            }),
            6,
        ),
        (
            "rowa",
            build(&|| {
                Store::rowa(5)
                    .transport(LocalTransport::new(Cluster::new(5)))
                    .build()
                    .unwrap()
            }),
            6,
        ),
        (
            "majority",
            build(&|| {
                Store::majority(5)
                    .transport(LocalTransport::new(Cluster::new(5)))
                    .build()
                    .unwrap()
            }),
            6,
        ),
    ]
}

/// Every backend works identically through the router: per-op and
/// batched access agree across a stripe range that spans all shards,
/// and scrubs route to the owning group.
#[test]
fn sharded_store_is_backend_agnostic() {
    for (label, store, width) in sharded_backends() {
        let stripes: Vec<u64> = (100..112).collect();
        for &stripe in &stripes {
            let blocks: Vec<Vec<u8>> = (0..width)
                .map(|b| vec![(stripe as u8).wrapping_add(b as u8); 48])
                .collect();
            store.create(stripe, blocks).unwrap_or_else(|e| {
                panic!("{label}: create stripe {stripe}: {e}");
            });
        }
        // Batched writes spanning every shard.
        let payloads: Vec<(BlockAddr, Vec<u8>)> = stripes
            .iter()
            .map(|&s| {
                (
                    BlockAddr::new(s, (s % width as u64) as usize),
                    vec![0xC0u8 ^ s as u8; 48],
                )
            })
            .collect();
        let items: Vec<BatchWrite<'_>> = payloads
            .iter()
            .map(|(addr, bytes)| BatchWrite { addr: *addr, bytes })
            .collect();
        let wrote = store.write_batch(&items);
        assert!(wrote.all_ok(), "{label}: batched writes commit");

        // Batched and per-op reads agree.
        let addrs: Vec<BlockAddr> = payloads.iter().map(|(a, _)| *a).collect();
        let batched = store.read_batch(&addrs);
        assert!(batched.all_ok(), "{label}: batched reads succeed");
        for ((addr, bytes), out) in payloads.iter().zip(&batched.outcomes) {
            let one = store.read(*addr).unwrap();
            let out = out.as_ref().unwrap();
            assert_eq!(&one.bytes, bytes, "{label}: routed read returns the write");
            assert_eq!(one.bytes, out.bytes, "{label}: batch agrees with per-op");
            assert_eq!(one.version, out.version, "{label}: versions agree");
        }

        // Scrubs route to the owning shard and report its node count.
        for &stripe in &stripes {
            let report = store.scrub(stripe).unwrap();
            assert_eq!(
                report.refreshed.len(),
                store.stripe_nodes(stripe),
                "{label}: scrub of stripe {stripe} covered its group"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Multi-threaded Volume stress across shards.
// ---------------------------------------------------------------------

fn stress_pattern(block: usize, version: u64) -> Vec<u8> {
    (0..64)
        .map(|i| (block as u64 * 31 + version * 17 + i) as u8)
        .collect()
}

/// Concurrent writers and readers across every shard of a sharded
/// volume. Each block has one writer, so per-block versions must be
/// strictly sequential (the history checker enforces it); readers check
/// per-block linearity — a read never returns a version below the floor
/// it observed before starting, and the bytes are exactly the committed
/// value of the version it served.
#[test]
fn concurrent_volume_traffic_is_linear_per_block() {
    const WRITERS: usize = 4;
    const BLOCKS: usize = 24;
    const ROUNDS: u64 = 6;

    let shards: Vec<TrapErcClient<LocalTransport>> = (0..2)
        .map(|_| {
            TrapErcClient::new(
                ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap(),
                LocalTransport::new(Cluster::new(15)),
            )
            .unwrap()
        })
        .collect();
    // Ranged one-stripe-per-range routing: consecutive stripe ids
    // alternate shards, so both groups carry traffic.
    let store = ShardedStore::new(shards, ShardMap::ranged(2, 1).unwrap()).unwrap();
    let volume =
        Arc::new(Volume::with_config(store, VolumeConfig::new(7_000, 64, BLOCKS)).unwrap());

    let initial: Vec<Vec<u8>> = (0..BLOCKS).map(|b| volume.read_block(b).unwrap()).collect();
    let checker = Arc::new(Mutex::new(HistoryChecker::new(&initial)));

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let volume = Arc::clone(&volume);
            let checker = Arc::clone(&checker);
            scope.spawn(move || {
                for round in 1..=ROUNDS {
                    let mut block = writer;
                    while block < BLOCKS {
                        let bytes = stress_pattern(block, round);
                        volume.write_block(block, &bytes).unwrap();
                        checker
                            .lock()
                            .unwrap()
                            .commit(block, &bytes, round, (round - 1) as usize)
                            .unwrap();
                        block += WRITERS;
                    }
                }
            });
        }
        for reader in 0..3usize {
            let volume = Arc::clone(&volume);
            let checker = Arc::clone(&checker);
            let initial = &initial;
            scope.spawn(move || {
                for pass in 0..ROUNDS as usize {
                    for offset in 0..BLOCKS {
                        let block = (reader + offset * 5) % BLOCKS;
                        let floor_before = checker.lock().unwrap().floor(block);
                        let bytes = volume.read_block(block).unwrap();
                        // Which committed version are these bytes? The
                        // single writer per block makes version <-> value
                        // a bijection, so the pattern decodes it.
                        let version = (0..=ROUNDS)
                            .find(|&v| {
                                let expected = if v == 0 {
                                    initial[block].clone()
                                } else {
                                    stress_pattern(block, v)
                                };
                                expected == bytes
                            })
                            .unwrap_or_else(|| panic!("block {block} pass {pass}: foreign bytes"));
                        assert!(
                            version >= floor_before,
                            "block {block}: read v{version} below floor v{floor_before}"
                        );
                    }
                }
            });
        }
    });

    // Every block settled on its final round.
    for block in 0..BLOCKS {
        assert_eq!(checker.lock().unwrap().floor(block), ROUNDS);
        assert_eq!(
            volume.read_block(block).unwrap(),
            stress_pattern(block, ROUNDS)
        );
    }
    let stripes = BLOCKS.div_ceil(volume.blocks_per_stripe());
    assert_eq!(volume.scrub_sharded().unwrap(), stripes * 15);
}
