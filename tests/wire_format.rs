//! Wire-format robustness properties.
//!
//! The deterministic unit tests inside `tq_cluster::wire` pin the exact
//! byte layout; these properties attack the decoder with *generated*
//! input instead:
//!
//! * every [`Request`] / [`Reply`] variant, with arbitrary ids,
//!   versions, vectors and payloads, survives an encode → decode
//!   roundtrip bit-for-bit;
//! * a frame truncated at **every** byte offset yields a typed
//!   [`DecodeError::Truncated`] — never a panic, never an over-read;
//! * arbitrary single-bit flips never panic the decoder, and any flip
//!   inside the CRC-protected 32-byte header is always rejected;
//! * oversized length fields (the header `body_len` and the body's
//!   interior length prefixes) come back as typed
//!   `BodyTooLarge` / `Truncated` / `LengthOverflow` errors;
//! * fully random buffers decode to `Err` or a bounded `Ok` — the
//!   decoder never consumes more bytes than it was given.
//!
//! None of these properties may ever observe a panic: the decoder's
//! contract is that hostile bytes produce typed [`DecodeError`]s.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use trapezoid_quorum::cluster::wire::{
    crc32, decode_frame, encode_envelope, encode_reply, DecodeError, Frame, HEADER_LEN,
    MAX_BODY_LEN,
};
use trapezoid_quorum::cluster::{Envelope, Lane, NodeError, OpId, Reply, Request, Response};

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

fn payload() -> impl Strategy<Value = Bytes> {
    vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn version_vec() -> impl Strategy<Value = Vec<u64>> {
    vec(any::<u64>(), 0..6)
}

/// Every [`Request`] variant with arbitrary field contents.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        (any::<u64>(), payload()).prop_map(|(id, bytes)| Request::InitData { id, bytes }),
        (any::<u64>(), payload(), 0usize..32, version_vec()).prop_map(|(id, bytes, k, checks)| {
            Request::InitParity {
                id,
                bytes,
                k,
                checks,
            }
        }),
        any::<u64>().prop_map(|id| Request::ReadData { id }),
        (any::<u64>(), payload(), any::<u64>())
            .prop_map(|(id, bytes, version)| Request::WriteData { id, bytes, version }),
        any::<u64>().prop_map(|id| Request::VersionData { id }),
        any::<u64>().prop_map(|id| Request::VersionVector { id }),
        any::<u64>().prop_map(|id| Request::ReadParity { id }),
        (any::<u64>(), payload(), version_vec(), version_vec()).prop_map(
            |(id, bytes, versions, checks)| Request::WriteParity {
                id,
                bytes,
                versions,
                checks,
            }
        ),
        (
            any::<u64>(),
            0usize..32,
            payload(),
            any::<u64>(),
            any::<u64>(),
            any::<u8>(),
            (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v)),
        )
            .prop_map(
                |(id, block_index, delta, expected_version, new_version, coeff, new_check)| {
                    Request::AddParity {
                        id,
                        block_index,
                        delta,
                        expected_version,
                        new_version,
                        coeff,
                        new_check,
                    }
                }
            ),
    ]
    .boxed()
}

/// Every [`Response`] variant with arbitrary field contents.
fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ack),
        (payload(), any::<u64>(), any::<u64>()).prop_map(|(bytes, version, check)| {
            Response::Data {
                bytes,
                version,
                check,
            }
        }),
        (payload(), version_vec(), version_vec()).prop_map(|(bytes, versions, checks)| {
            Response::Parity {
                bytes,
                versions,
                checks,
            }
        }),
        any::<u64>().prop_map(Response::Version),
        version_vec().prop_map(Response::Versions),
    ]
    .boxed()
}

/// Every [`NodeError`] variant with arbitrary field contents.
fn node_error() -> BoxedStrategy<NodeError> {
    prop_oneof![
        Just(NodeError::Down),
        Just(NodeError::NotFound),
        Just(NodeError::WrongKind),
        (any::<u64>(), any::<u64>())
            .prop_map(|(expected, actual)| NodeError::VersionConflict { expected, actual }),
        (0usize..1024, any::<u64>(), any::<u64>())
            .prop_map(|(index, got, stored)| NodeError::VectorConflict { index, got, stored }),
        (0usize..65536, 0usize..65536)
            .prop_map(|(stored, got)| NodeError::SizeMismatch { stored, got }),
        (0usize..1024, 0usize..1024).prop_map(|(index, k)| NodeError::BadBlockIndex { index, k }),
        Just(NodeError::Corrupt),
        Just(NodeError::TransportClosed),
        Just(NodeError::TimedOut),
    ]
    .boxed()
}

fn envelope() -> impl Strategy<Value = Envelope> {
    (any::<u64>(), any::<u64>(), any::<bool>(), request()).prop_map(
        |(op, epoch, background, payload)| Envelope {
            op_id: OpId(op),
            round_epoch: epoch,
            lane: if background {
                Lane::Background
            } else {
                Lane::Foreground
            },
            payload,
        },
    )
}

fn reply() -> impl Strategy<Value = Reply> {
    let result = prop_oneof![
        response().prop_map(Ok),
        node_error().prop_map(Err::<Response, NodeError>),
    ];
    // tq-lint: allow(opid-echo) -- proptest strategy fabricating arbitrary replies to round-trip the codec; nothing echoes an envelope here.
    (any::<u64>(), any::<u64>(), result).prop_map(|(op, epoch, result)| Reply {
        op_id: OpId(op),
        round_epoch: epoch,
        result,
    })
}

/// Rewrites the header's `body_len` field (bytes 24..28) and restamps
/// the header CRC so only the *length* lies, not the checksum.
fn forge_body_len(frame: &mut [u8], claimed: u32) {
    frame[24..28].copy_from_slice(&claimed.to_le_bytes());
    let crc = crc32(&frame[0..28]);
    frame[28..32].copy_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    /// Any envelope roundtrips bit-for-bit, consumes exactly its own
    /// frame, and ignores whatever follows it in the buffer.
    #[test]
    fn envelope_roundtrips(env in envelope(), junk in vec(any::<u8>(), 0..16)) {
        let frame = encode_envelope(&env);
        let frame_len = frame.len();

        let mut stream = frame;
        stream.extend_from_slice(&junk);
        let buf = Bytes::from(stream);

        let (decoded, consumed) = decode_frame(&buf).expect("valid frame decodes");
        prop_assert_eq!(consumed, frame_len, "consumed exactly one frame");
        match decoded {
            Frame::Envelope(got) => prop_assert_eq!(got, env),
            Frame::Reply(_) => prop_assert!(false, "request frame decoded as reply"),
        }
    }

    /// Any reply — every `Response` and `NodeError` variant — roundtrips.
    #[test]
    fn reply_roundtrips(rep in reply(), junk in vec(any::<u8>(), 0..16)) {
        let frame = encode_reply(&rep);
        let frame_len = frame.len();

        let mut stream = frame;
        stream.extend_from_slice(&junk);
        let buf = Bytes::from(stream);

        let (decoded, consumed) = decode_frame(&buf).expect("valid frame decodes");
        prop_assert_eq!(consumed, frame_len, "consumed exactly one frame");
        match decoded {
            Frame::Reply(got) => prop_assert_eq!(got, rep),
            Frame::Envelope(_) => prop_assert!(false, "reply frame decoded as request"),
        }
    }

    /// Truncation at EVERY byte offset of a valid frame is a typed
    /// `Truncated` error that reports how many bytes were missing.
    #[test]
    fn truncation_at_every_offset_is_typed(env in envelope()) {
        let frame = encode_envelope(&env);
        for cut in 0..frame.len() {
            let prefix = Bytes::from(frame[..cut].to_vec());
            match decode_frame(&prefix) {
                Err(DecodeError::Truncated { needed, got }) => {
                    prop_assert_eq!(got, cut);
                    prop_assert!(
                        needed > cut,
                        "cut at {} claims to need only {}",
                        cut,
                        needed
                    );
                }
                other => {
                    prop_assert!(false, "cut at {} produced {:?}", cut, other);
                }
            }
        }
    }

    /// A single bit flip anywhere never panics the decoder, and a flip
    /// inside the 32-byte header is always rejected: bytes 0..28 are
    /// covered by the CRC, bytes 28..32 *are* the stored CRC.
    #[test]
    fn single_bit_flips_never_panic(env in envelope(), pos in any::<usize>(), bit in 0u8..8) {
        let mut frame = encode_envelope(&env);
        let idx = pos % frame.len();
        frame[idx] ^= 1 << bit;
        let buf = Bytes::from(frame);

        // An `Err` of any kind is acceptable; an `Ok` must be a bounded
        // body-region flip (payload bytes are deliberately unchecksummed).
        if let Ok((_, consumed)) = decode_frame(&buf) {
            prop_assert!(
                idx >= HEADER_LEN,
                "header flip at byte {} slipped past the CRC",
                idx
            );
            prop_assert!(consumed <= buf.len(), "decoder over-read");
        }
    }

    /// An oversized header `body_len` (with a freshly restamped CRC, so
    /// only the length lies) is a typed error: `BodyTooLarge` past the
    /// 64 MiB cap, `Truncated` below it.
    #[test]
    fn oversized_header_body_len_is_typed(env in envelope(), extra in 1u32..u32::MAX / 2) {
        let mut frame = encode_envelope(&env);
        let real = (frame.len() - HEADER_LEN) as u32;
        let claimed = real.saturating_add(extra);
        forge_body_len(&mut frame, claimed);
        let buf = Bytes::from(frame);

        match decode_frame(&buf) {
            Err(DecodeError::BodyTooLarge { len, max }) => {
                prop_assert_eq!(len, claimed);
                prop_assert_eq!(max, MAX_BODY_LEN);
                prop_assert!(claimed > MAX_BODY_LEN);
            }
            Err(DecodeError::Truncated { needed, got }) => {
                prop_assert_eq!(needed, HEADER_LEN + claimed as usize);
                prop_assert_eq!(got, buf.len());
                prop_assert!(claimed <= MAX_BODY_LEN);
            }
            other => {
                prop_assert!(false, "forged body_len {} produced {:?}", claimed, other);
            }
        }
    }

    /// An interior length prefix claiming more payload than the body
    /// holds is a `LengthOverflow` naming the field — the decoder must
    /// not walk past the declared body.
    #[test]
    fn oversized_interior_length_is_typed(
        id in any::<u64>(),
        data in vec(any::<u8>(), 0..32),
        extra in 1u32..u32::MAX / 2,
    ) {
        let env = Envelope {
            op_id: OpId(7),
            round_epoch: 0,
            lane: Lane::Foreground,
            payload: Request::InitData {
                id,
                bytes: Bytes::from(data),
            },
        };
        let mut frame = encode_envelope(&env);
        // InitData body: tag(1) + id(8) + payload length prefix (u32).
        let len_at = HEADER_LEN + 1 + 8;
        let real = u32::from_le_bytes(frame[len_at..len_at + 4].try_into().unwrap());
        let claimed = real.saturating_add(extra);
        frame[len_at..len_at + 4].copy_from_slice(&claimed.to_le_bytes());
        let buf = Bytes::from(frame);

        match decode_frame(&buf) {
            Err(DecodeError::LengthOverflow { claimed: c, remaining, .. }) => {
                prop_assert_eq!(c, claimed as u64);
                prop_assert!(c > remaining as u64, "not actually oversized");
            }
            other => {
                prop_assert!(false, "forged interior length {} produced {:?}", claimed, other);
            }
        }
    }

    /// Fully random buffers never panic and never over-read: either a
    /// typed error, or (astronomically unlikely) a bounded `Ok`.
    #[test]
    fn random_garbage_never_panics(junk in vec(any::<u8>(), 0..160)) {
        let buf = Bytes::from(junk);
        if let Ok((_, consumed)) = decode_frame(&buf) {
            prop_assert!(consumed <= buf.len(), "decoder over-read random input");
        }
    }
}

/// Appends raw bytes to a sealed frame's body and restamps `body_len`
/// plus the header CRC — forging the frame a *newer* peer would send,
/// with trailing fields today's encoder does not know about.
fn append_to_body(frame: &mut Vec<u8>, extra: &[u8]) {
    frame.extend_from_slice(extra);
    let body_len = (frame.len() - HEADER_LEN) as u32;
    frame[24..28].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&frame[0..28]);
    frame[28..32].copy_from_slice(&crc.to_le_bytes());
}

/// Version skew, future-to-past: a frame carrying an *unknown* trailing
/// extension (the tag·len·payload shape every extensible variant
/// reserves) must decode on today's decoder to exactly the value the
/// known fields describe — unknown trailers are skipped, not errors.
/// This is the compatibility contract that lets checksum-aware peers
/// talk to older nodes, and future peers talk to these.
#[test]
fn unknown_trailing_extensions_from_newer_peers_are_skipped() {
    // A request-side extensible variant...
    // Background lane: the flag bit must round-trip alongside the
    // trailing extensions it shares the header with.
    let env = Envelope {
        op_id: OpId(41),
        round_epoch: 2,
        lane: Lane::Background,
        payload: Request::WriteParity {
            id: 13,
            bytes: Bytes::from_static(b"parity-bytes"),
            versions: vec![3, 1, 4],
            checks: vec![0xAA, 0xBB, 0xCC],
        },
    };
    let mut frame = encode_envelope(&env);
    // Unknown tag 0x6F with an 11-byte payload.
    let mut ext = vec![0x6F];
    ext.extend_from_slice(&11u32.to_le_bytes());
    ext.extend_from_slice(b"from-future");
    append_to_body(&mut frame, &ext);
    match decode_frame(&Bytes::from(frame)).expect("extended frame decodes") {
        (Frame::Envelope(got), _) => assert_eq!(got, env),
        other => panic!("unexpected {other:?}"),
    }

    // ...and a reply-side one, with two unknown trailers back to back.
    let rep = Reply {
        op_id: OpId(42),
        round_epoch: 9,
        result: Ok(Response::Data {
            bytes: Bytes::from_static(b"data-bytes"),
            version: 7,
            check: 0x0123_4567_89AB_CDEF,
        }),
    };
    let mut frame = encode_reply(&rep);
    let mut ext = vec![0xE1];
    ext.extend_from_slice(&0u32.to_le_bytes());
    ext.push(0xE2);
    ext.extend_from_slice(&3u32.to_le_bytes());
    ext.extend_from_slice(&[1, 2, 3]);
    append_to_body(&mut frame, &ext);
    match decode_frame(&Bytes::from(frame)).expect("extended frame decodes") {
        (Frame::Reply(got), _) => assert_eq!(got, rep),
        other => panic!("unexpected {other:?}"),
    }

    // A *truncated* unknown extension (length claims past the body) is
    // still a typed error, not a skip.
    let mut frame = encode_reply(&rep);
    let mut ext = vec![0xE3];
    ext.extend_from_slice(&200u32.to_le_bytes());
    append_to_body(&mut frame, &ext);
    assert!(matches!(
        decode_frame(&Bytes::from(frame)),
        Err(DecodeError::LengthOverflow { .. })
    ));
}

/// Byte-level corruption sweep outside proptest: flip every single bit
/// of one representative frame's header and demand a typed rejection
/// for each — exhaustive where the property above is sampled.
#[test]
fn every_header_bit_flip_is_rejected() {
    let env = Envelope {
        op_id: OpId(0xDEAD_BEEF),
        round_epoch: 3,
        lane: Lane::Foreground,
        payload: Request::WriteData {
            id: 9,
            bytes: Bytes::from_static(b"exhaustive"),
            version: 4,
        },
    };
    let frame = encode_envelope(&env);
    for idx in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut corrupt = frame.clone();
            corrupt[idx] ^= 1 << bit;
            let buf = Bytes::from(corrupt);
            assert!(
                decode_frame(&buf).is_err(),
                "flip of header byte {idx} bit {bit} was not rejected"
            );
        }
    }
}
