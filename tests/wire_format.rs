//! Wire-format robustness properties.
//!
//! The deterministic unit tests inside `tq_cluster::wire` pin the exact
//! byte layout; these properties attack the decoder with *generated*
//! input instead:
//!
//! * every [`Request`] / [`Reply`] variant, with arbitrary ids,
//!   versions, vectors and payloads, survives an encode → decode
//!   roundtrip bit-for-bit;
//! * a frame truncated at **every** byte offset yields a typed
//!   [`DecodeError::Truncated`] — never a panic, never an over-read;
//! * arbitrary single-bit flips never panic the decoder, and any flip
//!   inside the CRC-protected 32-byte header is always rejected;
//! * oversized length fields (the header `body_len` and the body's
//!   interior length prefixes) come back as typed
//!   `BodyTooLarge` / `Truncated` / `LengthOverflow` errors;
//! * fully random buffers decode to `Err` or a bounded `Ok` — the
//!   decoder never consumes more bytes than it was given.
//!
//! None of these properties may ever observe a panic: the decoder's
//! contract is that hostile bytes produce typed [`DecodeError`]s.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use trapezoid_quorum::cluster::wire::{
    crc32, decode_frame, encode_envelope, encode_reply, DecodeError, Frame, HEADER_LEN,
    MAX_BODY_LEN,
};
use trapezoid_quorum::cluster::{Envelope, NodeError, OpId, Reply, Request, Response};

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

fn payload() -> impl Strategy<Value = Bytes> {
    vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn version_vec() -> impl Strategy<Value = Vec<u64>> {
    vec(any::<u64>(), 0..6)
}

/// Every [`Request`] variant with arbitrary field contents.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        (any::<u64>(), payload()).prop_map(|(id, bytes)| Request::InitData { id, bytes }),
        (any::<u64>(), payload(), 0usize..32).prop_map(|(id, bytes, k)| Request::InitParity {
            id,
            bytes,
            k
        }),
        any::<u64>().prop_map(|id| Request::ReadData { id }),
        (any::<u64>(), payload(), any::<u64>())
            .prop_map(|(id, bytes, version)| Request::WriteData { id, bytes, version }),
        any::<u64>().prop_map(|id| Request::VersionData { id }),
        any::<u64>().prop_map(|id| Request::VersionVector { id }),
        any::<u64>().prop_map(|id| Request::ReadParity { id }),
        (any::<u64>(), payload(), version_vec()).prop_map(|(id, bytes, versions)| {
            Request::WriteParity {
                id,
                bytes,
                versions,
            }
        }),
        (
            any::<u64>(),
            0usize..32,
            payload(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(id, block_index, delta, expected_version, new_version)| {
                Request::AddParity {
                    id,
                    block_index,
                    delta,
                    expected_version,
                    new_version,
                }
            }),
    ]
    .boxed()
}

/// Every [`Response`] variant with arbitrary field contents.
fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ack),
        (payload(), any::<u64>()).prop_map(|(bytes, version)| Response::Data { bytes, version }),
        (payload(), version_vec())
            .prop_map(|(bytes, versions)| Response::Parity { bytes, versions }),
        any::<u64>().prop_map(Response::Version),
        version_vec().prop_map(Response::Versions),
    ]
    .boxed()
}

/// Every [`NodeError`] variant with arbitrary field contents.
fn node_error() -> BoxedStrategy<NodeError> {
    prop_oneof![
        Just(NodeError::Down),
        Just(NodeError::NotFound),
        Just(NodeError::WrongKind),
        (any::<u64>(), any::<u64>())
            .prop_map(|(expected, actual)| NodeError::VersionConflict { expected, actual }),
        (0usize..1024, any::<u64>(), any::<u64>())
            .prop_map(|(index, got, stored)| NodeError::VectorConflict { index, got, stored }),
        (0usize..65536, 0usize..65536)
            .prop_map(|(stored, got)| NodeError::SizeMismatch { stored, got }),
        (0usize..1024, 0usize..1024).prop_map(|(index, k)| NodeError::BadBlockIndex { index, k }),
        Just(NodeError::TransportClosed),
        Just(NodeError::TimedOut),
    ]
    .boxed()
}

fn envelope() -> impl Strategy<Value = Envelope> {
    (any::<u64>(), any::<u64>(), request()).prop_map(|(op, epoch, payload)| Envelope {
        op_id: OpId(op),
        round_epoch: epoch,
        payload,
    })
}

fn reply() -> impl Strategy<Value = Reply> {
    let result = prop_oneof![
        response().prop_map(Ok),
        node_error().prop_map(Err::<Response, NodeError>),
    ];
    (any::<u64>(), any::<u64>(), result).prop_map(|(op, epoch, result)| Reply {
        op_id: OpId(op),
        round_epoch: epoch,
        result,
    })
}

/// Rewrites the header's `body_len` field (bytes 24..28) and restamps
/// the header CRC so only the *length* lies, not the checksum.
fn forge_body_len(frame: &mut [u8], claimed: u32) {
    frame[24..28].copy_from_slice(&claimed.to_le_bytes());
    let crc = crc32(&frame[0..28]);
    frame[28..32].copy_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    /// Any envelope roundtrips bit-for-bit, consumes exactly its own
    /// frame, and ignores whatever follows it in the buffer.
    #[test]
    fn envelope_roundtrips(env in envelope(), junk in vec(any::<u8>(), 0..16)) {
        let frame = encode_envelope(&env);
        let frame_len = frame.len();

        let mut stream = frame;
        stream.extend_from_slice(&junk);
        let buf = Bytes::from(stream);

        let (decoded, consumed) = decode_frame(&buf).expect("valid frame decodes");
        prop_assert_eq!(consumed, frame_len, "consumed exactly one frame");
        match decoded {
            Frame::Envelope(got) => prop_assert_eq!(got, env),
            Frame::Reply(_) => prop_assert!(false, "request frame decoded as reply"),
        }
    }

    /// Any reply — every `Response` and `NodeError` variant — roundtrips.
    #[test]
    fn reply_roundtrips(rep in reply(), junk in vec(any::<u8>(), 0..16)) {
        let frame = encode_reply(&rep);
        let frame_len = frame.len();

        let mut stream = frame;
        stream.extend_from_slice(&junk);
        let buf = Bytes::from(stream);

        let (decoded, consumed) = decode_frame(&buf).expect("valid frame decodes");
        prop_assert_eq!(consumed, frame_len, "consumed exactly one frame");
        match decoded {
            Frame::Reply(got) => prop_assert_eq!(got, rep),
            Frame::Envelope(_) => prop_assert!(false, "reply frame decoded as request"),
        }
    }

    /// Truncation at EVERY byte offset of a valid frame is a typed
    /// `Truncated` error that reports how many bytes were missing.
    #[test]
    fn truncation_at_every_offset_is_typed(env in envelope()) {
        let frame = encode_envelope(&env);
        for cut in 0..frame.len() {
            let prefix = Bytes::from(frame[..cut].to_vec());
            match decode_frame(&prefix) {
                Err(DecodeError::Truncated { needed, got }) => {
                    prop_assert_eq!(got, cut);
                    prop_assert!(
                        needed > cut,
                        "cut at {} claims to need only {}",
                        cut,
                        needed
                    );
                }
                other => {
                    prop_assert!(false, "cut at {} produced {:?}", cut, other);
                }
            }
        }
    }

    /// A single bit flip anywhere never panics the decoder, and a flip
    /// inside the 32-byte header is always rejected: bytes 0..28 are
    /// covered by the CRC, bytes 28..32 *are* the stored CRC.
    #[test]
    fn single_bit_flips_never_panic(env in envelope(), pos in any::<usize>(), bit in 0u8..8) {
        let mut frame = encode_envelope(&env);
        let idx = pos % frame.len();
        frame[idx] ^= 1 << bit;
        let buf = Bytes::from(frame);

        // An `Err` of any kind is acceptable; an `Ok` must be a bounded
        // body-region flip (payload bytes are deliberately unchecksummed).
        if let Ok((_, consumed)) = decode_frame(&buf) {
            prop_assert!(
                idx >= HEADER_LEN,
                "header flip at byte {} slipped past the CRC",
                idx
            );
            prop_assert!(consumed <= buf.len(), "decoder over-read");
        }
    }

    /// An oversized header `body_len` (with a freshly restamped CRC, so
    /// only the length lies) is a typed error: `BodyTooLarge` past the
    /// 64 MiB cap, `Truncated` below it.
    #[test]
    fn oversized_header_body_len_is_typed(env in envelope(), extra in 1u32..u32::MAX / 2) {
        let mut frame = encode_envelope(&env);
        let real = (frame.len() - HEADER_LEN) as u32;
        let claimed = real.saturating_add(extra);
        forge_body_len(&mut frame, claimed);
        let buf = Bytes::from(frame);

        match decode_frame(&buf) {
            Err(DecodeError::BodyTooLarge { len, max }) => {
                prop_assert_eq!(len, claimed);
                prop_assert_eq!(max, MAX_BODY_LEN);
                prop_assert!(claimed > MAX_BODY_LEN);
            }
            Err(DecodeError::Truncated { needed, got }) => {
                prop_assert_eq!(needed, HEADER_LEN + claimed as usize);
                prop_assert_eq!(got, buf.len());
                prop_assert!(claimed <= MAX_BODY_LEN);
            }
            other => {
                prop_assert!(false, "forged body_len {} produced {:?}", claimed, other);
            }
        }
    }

    /// An interior length prefix claiming more payload than the body
    /// holds is a `LengthOverflow` naming the field — the decoder must
    /// not walk past the declared body.
    #[test]
    fn oversized_interior_length_is_typed(
        id in any::<u64>(),
        data in vec(any::<u8>(), 0..32),
        extra in 1u32..u32::MAX / 2,
    ) {
        let env = Envelope {
            op_id: OpId(7),
            round_epoch: 0,
            payload: Request::InitData {
                id,
                bytes: Bytes::from(data),
            },
        };
        let mut frame = encode_envelope(&env);
        // InitData body: tag(1) + id(8) + payload length prefix (u32).
        let len_at = HEADER_LEN + 1 + 8;
        let real = u32::from_le_bytes(frame[len_at..len_at + 4].try_into().unwrap());
        let claimed = real.saturating_add(extra);
        frame[len_at..len_at + 4].copy_from_slice(&claimed.to_le_bytes());
        let buf = Bytes::from(frame);

        match decode_frame(&buf) {
            Err(DecodeError::LengthOverflow { claimed: c, remaining, .. }) => {
                prop_assert_eq!(c, claimed as u64);
                prop_assert!(c > remaining as u64, "not actually oversized");
            }
            other => {
                prop_assert!(false, "forged interior length {} produced {:?}", claimed, other);
            }
        }
    }

    /// Fully random buffers never panic and never over-read: either a
    /// typed error, or (astronomically unlikely) a bounded `Ok`.
    #[test]
    fn random_garbage_never_panics(junk in vec(any::<u8>(), 0..160)) {
        let buf = Bytes::from(junk);
        if let Ok((_, consumed)) = decode_frame(&buf) {
            prop_assert!(consumed <= buf.len(), "decoder over-read random input");
        }
    }
}

/// Byte-level corruption sweep outside proptest: flip every single bit
/// of one representative frame's header and demand a typed rejection
/// for each — exhaustive where the property above is sampled.
#[test]
fn every_header_bit_flip_is_rejected() {
    let env = Envelope {
        op_id: OpId(0xDEAD_BEEF),
        round_epoch: 3,
        payload: Request::WriteData {
            id: 9,
            bytes: Bytes::from_static(b"exhaustive"),
            version: 4,
        },
    };
    let frame = encode_envelope(&env);
    for idx in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut corrupt = frame.clone();
            corrupt[idx] ^= 1 << bit;
            let buf = Bytes::from(corrupt);
            assert!(
                decode_frame(&buf).is_err(),
                "flip of header byte {idx} bit {bit} was not rejected"
            );
        }
    }
}
