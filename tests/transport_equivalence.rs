//! Transport equivalence: the same [`NodeApi`] instances answer an
//! identical command sequence identically under [`SimTransport`] (the
//! in-process simulation seam) and [`TcpTransport`] (real loopback
//! sockets through the versioned wire format).
//!
//! This is the seam contract the whole test strategy leans on: every
//! protocol property proven under the deterministic simulator transfers
//! to the real transport *because* the transport is invisible to the
//! node — same envelopes in, same replies out, byte for byte. A
//! divergence here means the wire encode/decode or the TCP framing
//! changed observable behaviour, which no amount of simulation coverage
//! would catch.

use std::sync::Arc;

use bytes::Bytes;
use trapezoid_quorum::cluster::transport::Transport;
use trapezoid_quorum::cluster::{
    Cluster, Envelope, Lane, NetworkModel, NodeApi, NodeId, OpId, Reply, Request, SimTransport,
    TcpNodeServer, TcpTransport,
};

/// A deterministic script touching every request variant, the absorbed
/// duplicate/stale paths, and every node-level error the wire must
/// carry faithfully. Envelope identities are fixed (not `fresh()`) so
/// the two runs are bit-identical.
fn script() -> Vec<(usize, Envelope)> {
    let env = |n: u64, payload: Request| Envelope {
        op_id: OpId(0x5000 + n),
        round_epoch: 7,
        lane: Lane::Foreground,
        payload,
    };
    let data = |fill: u8| Bytes::from(vec![fill; 24]);
    vec![
        // Stripe creation: data on node 0, parity tracking k=3 on node 3.
        (
            0,
            env(
                0,
                Request::InitData {
                    id: 11,
                    bytes: data(0xA0),
                },
            ),
        ),
        (
            3,
            env(
                1,
                Request::InitParity {
                    id: 11,
                    bytes: data(0xB0),
                    k: 3,
                    checks: vec![0xC1, 0xC2, 0xC3],
                },
            ),
        ),
        // The full mutation vocabulary.
        (
            0,
            env(
                2,
                Request::WriteData {
                    id: 11,
                    bytes: data(0xA1),
                    version: 1,
                },
            ),
        ),
        (
            3,
            env(
                3,
                Request::AddParity {
                    id: 11,
                    block_index: 0,
                    delta: data(0x0F),
                    expected_version: 0,
                    new_version: 1,
                    coeff: 0x37,
                    new_check: Some(0xFACE_0FF5_1DE0_0B0E),
                },
            ),
        ),
        (
            3,
            env(
                4,
                Request::WriteParity {
                    id: 11,
                    bytes: data(0xB2),
                    versions: vec![1, 2, 0],
                    checks: vec![7, 8, 9],
                },
            ),
        ),
        // Every read shape.
        (0, env(5, Request::ReadData { id: 11 })),
        (3, env(6, Request::ReadParity { id: 11 })),
        (0, env(7, Request::VersionData { id: 11 })),
        (3, env(8, Request::VersionVector { id: 11 })),
        (2, env(9, Request::Ping)),
        // Idempotent absorption: a stale write acks without applying.
        (
            0,
            env(
                10,
                Request::WriteData {
                    id: 11,
                    bytes: data(0xA9),
                    version: 0,
                },
            ),
        ),
        // Every error the wire must carry: NotFound, WrongKind,
        // VersionConflict, VectorConflict, SizeMismatch, BadBlockIndex.
        (2, env(11, Request::ReadData { id: 99 })),
        (
            0,
            env(
                12,
                Request::AddParity {
                    id: 11,
                    block_index: 0,
                    delta: data(0x01),
                    expected_version: 1,
                    new_version: 2,
                    coeff: 1,
                    new_check: None,
                },
            ),
        ),
        (
            3,
            env(
                13,
                Request::AddParity {
                    id: 11,
                    block_index: 1,
                    delta: data(0x02),
                    expected_version: 7,
                    new_version: 8,
                    coeff: 1,
                    new_check: None,
                },
            ),
        ),
        (
            3,
            env(
                14,
                Request::WriteParity {
                    id: 11,
                    bytes: data(0xB3),
                    versions: vec![0, 3, 0],
                    checks: vec![],
                },
            ),
        ),
        (
            0,
            env(
                15,
                Request::WriteData {
                    id: 11,
                    bytes: Bytes::from(vec![0xA2; 9]),
                    version: 2,
                },
            ),
        ),
        (
            3,
            env(
                16,
                Request::AddParity {
                    id: 11,
                    block_index: 9,
                    delta: data(0x03),
                    expected_version: 0,
                    new_version: 1,
                    coeff: 0xE4,
                    new_check: Some(1),
                },
            ),
        ),
    ]
}

fn run(transport: &dyn Transport, script: &[(usize, Envelope)]) -> Vec<Reply> {
    script
        .iter()
        .map(|(node, env)| transport.dispatch(NodeId(*node), env.clone()))
        .collect()
}

#[test]
fn sim_and_tcp_transports_are_observationally_identical() {
    let cluster = Cluster::new(5);
    let script = script();

    // Run 1: the simulation seam with a fault-free network.
    let sim = SimTransport::with_model(cluster.clone(), 42, NetworkModel::reliable());
    let sim_replies = run(&sim, &script);

    // Reset the *same* node instances (blocks and applied-op window
    // both live in the wiped durability domain).
    for node in cluster.nodes() {
        node.wipe();
    }

    // Run 2: the same NodeApi objects behind real loopback TCP.
    let servers: Vec<TcpNodeServer> = cluster
        .nodes()
        .map(|n| {
            let api: Arc<dyn NodeApi> = n.clone();
            TcpNodeServer::spawn(api, "127.0.0.1:0").expect("bind loopback server")
        })
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let tcp = TcpTransport::connect(addrs);
    let tcp_replies = run(&tcp, &script);

    assert_eq!(sim_replies.len(), tcp_replies.len());
    for (i, (s, t)) in sim_replies.iter().zip(&tcp_replies).enumerate() {
        assert_eq!(
            s, t,
            "reply {i} diverged between SimTransport and TcpTransport \
             for {}",
            script[i].1
        );
    }

    // Sanity: the script exercised both success and error paths (an
    // all-`Ok` or all-`Err` run would make equivalence vacuous).
    let ok = sim_replies.iter().filter(|r| r.result.is_ok()).count();
    let err = sim_replies.len() - ok;
    assert!(ok >= 8, "script should succeed broadly (got {ok} oks)");
    assert!(err >= 4, "script should fail broadly (got {err} errors)");
}
