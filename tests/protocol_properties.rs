//! Protocol-level property tests: random workloads against a shadow
//! model, with bounded random fail-stop churn.
//!
//! These close the loop the unit tests cannot: arbitrary interleavings of
//! writes, reads, failures, revivals, scrubs and rebuilds, always checked
//! against an in-memory oracle. Failures are kept within the code's
//! tolerance (≤ n − k simultaneous) between scrub points.
//!
//! The oracle allows exactly three sources for any byte a read returns:
//! the initial content, a committed write, or the residue of a failed
//! write (Algorithm 1 has no rollback). A scrub may additionally
//! *salvage* a poisoned block — a failed write whose residue version is
//! visible but unrecoverable — by rolling it back to the newest
//! recoverable value; the settled value must still be one of the above.

use std::collections::BTreeSet;

use proptest::prelude::*;
use trapezoid_quorum::quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use trapezoid_quorum::{Cluster, LocalTransport, ProtocolConfig, ProtocolError, TrapErcClient};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Op {
    Write { block: usize, seed: u8 },
    Read { block: usize },
    Kill { node: usize },
    ReviveAllAndScrub,
    Replace { node: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<usize>(), any::<u8>()).prop_map(|(b, seed)| Op::Write { block: b % 8, seed }),
        3 => any::<usize>().prop_map(|b| Op::Read { block: b % 8 }),
        2 => any::<usize>().prop_map(|n| Op::Kill { node: n % 15 }),
        1 => Just(Op::ReviveAllAndScrub),
        1 => any::<usize>().prop_map(|n| Op::Replace { node: n % 15 }),
    ]
}

const BLOCK_LEN: usize = 32;

/// Shadow model: per block, the set of currently-plausible values plus
/// the set of every value that was ever written (for salvage checking).
struct Oracle {
    plausible: Vec<Vec<Vec<u8>>>,
    ever: Vec<Vec<Vec<u8>>>,
}

impl Oracle {
    fn new(initial: &[Vec<u8>]) -> Self {
        Oracle {
            plausible: initial.iter().map(|b| vec![b.clone()]).collect(),
            ever: initial.iter().map(|b| vec![b.clone()]).collect(),
        }
    }
    fn record_ever(&mut self, block: usize, value: &[u8]) {
        if !self.ever[block].iter().any(|v| v == value) {
            self.ever[block].push(value.to_vec());
        }
    }
    fn committed(&mut self, block: usize, value: Vec<u8>) {
        self.record_ever(block, &value);
        self.plausible[block] = vec![value];
    }
    fn residue(&mut self, block: usize, value: Vec<u8>) {
        self.record_ever(block, &value);
        self.plausible[block].push(value);
    }
    fn plausible_now(&self, block: usize, value: &[u8]) -> bool {
        self.plausible[block].iter().any(|v| v == value)
    }
    fn ever_written(&self, block: usize, value: &[u8]) -> bool {
        self.ever[block].iter().any(|v| v == value)
    }
    /// A scrub settled the block on `value` (possibly a salvage
    /// rollback): it becomes the single plausible value.
    fn settled(&mut self, block: usize, value: Vec<u8>) {
        self.plausible[block] = vec![value];
    }
}

/// Reads every block after a scrub, asserting the settled values were
/// ever written, and collapses the oracle onto them.
fn audit_after_scrub(
    client: &TrapErcClient<LocalTransport>,
    oracle: &mut Oracle,
    salvaged: &[usize],
) -> Result<(), TestCaseError> {
    for block in 0..8 {
        let out = client
            .read_block(1, block)
            .expect("scrubbed stripe readable");
        if salvaged.contains(&block) {
            prop_assert!(
                oracle.ever_written(block, &out.bytes),
                "salvaged block {block} settled on a never-written value"
            );
        } else {
            prop_assert!(
                oracle.plausible_now(block, &out.bytes),
                "block {block} settled on an implausible value"
            );
        }
        oracle.settled(block, out.bytes);
    }
    Ok(())
}

/// Strategy over valid trapezoid shapes `(a, b, h)` paired with a legal
/// per-level write-threshold vector (level 0 at or above its majority,
/// every other level in `1..=s_l`) and a seed for quorum sampling.
fn shape_and_thresholds() -> impl Strategy<Value = (TrapezoidShape, Vec<usize>, u64)> {
    (
        0usize..=3,
        1usize..=6,
        0usize..=3,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_filter_map("valid trapezoid", |(a, b, h, wseed, qseed)| {
            let shape = TrapezoidShape::new(a, b, h).ok()?;
            let mut rng = StdRng::seed_from_u64(wseed);
            let w: Vec<usize> = (0..=h)
                .map(|l| {
                    let s = shape.level_size(l);
                    if l == 0 {
                        rng.random_range(b / 2 + 1..=s)
                    } else {
                        rng.random_range(1..=s)
                    }
                })
                .collect();
            Some((shape, w, qseed))
        })
}

/// Draws `count` distinct positions from level `l` of the shape.
fn sample_level_members(
    shape: &TrapezoidShape,
    l: usize,
    count: usize,
    rng: &mut StdRng,
) -> BTreeSet<usize> {
    let mut pool: Vec<usize> = shape.level_range(l).collect();
    for i in 0..count {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool.into_iter().collect()
}

/// One write quorum: `w_l` arbitrary members from *every* level.
fn sample_write_quorum(
    shape: &TrapezoidShape,
    thresholds: &WriteThresholds,
    rng: &mut StdRng,
) -> BTreeSet<usize> {
    let mut q = BTreeSet::new();
    for l in 0..=shape.h() {
        q.extend(sample_level_members(
            shape,
            l,
            thresholds.write_threshold(l),
            rng,
        ));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Safety: every read returns a value that was written to that block
    /// (committed or residue) — never garbage, never another block's
    /// bytes, never a mix — and scrubs settle only on ever-written values.
    #[test]
    fn reads_return_only_written_values(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        let initial: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; BLOCK_LEN]).collect();
        client.create_stripe(1, initial.clone()).unwrap();
        let mut oracle = Oracle::new(&initial);
        let mut down = 0usize;

        for op in ops {
            match op {
                Op::Write { block, seed } => {
                    let payload: Vec<u8> = (0..BLOCK_LEN).map(|b| seed.wrapping_add(b as u8)).collect();
                    match client.write_block(1, block, &payload) {
                        Ok(_) => oracle.committed(block, payload),
                        Err(ProtocolError::WriteQuorumNotMet { .. }) => oracle.residue(block, payload),
                        Err(ProtocolError::OldValueUnreadable(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected write error {e}"),
                    }
                }
                Op::Read { block } => {
                    if let Ok(out) = client.read_block(1, block) {
                        prop_assert!(
                            oracle.plausible_now(block, &out.bytes),
                            "block {block} returned a never-written value"
                        );
                    }
                }
                Op::Kill { node } => {
                    // Keep simultaneous failures within n - k = 7.
                    if down < 7 && cluster.node(node).is_up() {
                        cluster.kill(node);
                        down += 1;
                    }
                }
                Op::ReviveAllAndScrub => {
                    for n in 0..15 {
                        cluster.revive(n);
                    }
                    down = 0;
                    let report = client.scrub_stripe(1).unwrap();
                    audit_after_scrub(&client, &mut oracle, &report.salvaged)?;
                }
                Op::Replace { node } => {
                    // Replacement only when the cluster is healthy enough
                    // to rebuild (otherwise it is just a kill).
                    if down == 0 {
                        cluster.replace(node);
                        if client.rebuild_node(1, node).is_err() {
                            // Not rebuildable right now: count as down.
                            cluster.kill(node);
                            down += 1;
                        }
                    }
                }
            }
        }

        // Final: heal everything; the scrub must leave every block
        // readable at an ever-written value (salvaging if poisoned).
        for n in 0..15 {
            cluster.revive(n);
        }
        let report = client.scrub_stripe(1).unwrap();
        audit_after_scrub(&client, &mut oracle, &report.salvaged)?;
    }

    /// Durability: a committed write is immediately readable and survives
    /// any single later failure plus recovery — salvage never rolls back
    /// a *committed* write in this regime.
    #[test]
    fn committed_writes_are_durable(
        block in 0usize..8,
        seed in any::<u8>(),
        killer in any::<usize>(),
    ) {
        let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap();
        let cluster = Cluster::new(15);
        let client = TrapErcClient::new(config, LocalTransport::new(cluster.clone())).unwrap();
        client.create_stripe(1, (0..8).map(|i| vec![i as u8; BLOCK_LEN]).collect()).unwrap();

        let payload: Vec<u8> = (0..BLOCK_LEN).map(|b| seed.wrapping_mul(b as u8 | 1)).collect();
        client.write_block(1, block, &payload).unwrap();

        // Any single node dies — commits must stay readable.
        cluster.kill(killer % 15);
        let out = client.read_block(1, block).unwrap();
        prop_assert_eq!(&out.bytes, &payload);

        // Heal and scrub: still the same value, now direct, no salvage.
        cluster.revive(killer % 15);
        let report = client.scrub_stripe(1).unwrap();
        prop_assert!(report.salvaged.is_empty());
        let out = client.read_block(1, block).unwrap();
        prop_assert_eq!(&out.bytes, &payload);
    }

    /// Structure: on *every* generated shape and threshold vector, the
    /// derived read thresholds satisfy `r_l + w_l = s_l + 1` per level —
    /// the eq. 6/7 identity that forces read/write intersection.
    #[test]
    fn generated_shapes_satisfy_threshold_identities((shape, w, _qseed) in shape_and_thresholds()) {
        let thresholds = WriteThresholds::new(&shape, w.clone());
        prop_assert!(thresholds.is_ok(), "legal vector rejected: {w:?} on {shape}");
        let thresholds = thresholds.unwrap();
        prop_assert!(thresholds.write_threshold(0) > shape.level_size(0) / 2);
        for l in 0..=shape.h() {
            let (s, wl) = (shape.level_size(l), thresholds.write_threshold(l));
            let rl = thresholds.read_threshold(&shape, l);
            prop_assert_eq!(rl + wl, s + 1, "level {l} of {shape}");
            prop_assert!((1..=s).contains(&wl));
            prop_assert!((1..=s).contains(&rl));
        }
    }

    /// Witness: sampled quorums on every generated shape really do
    /// intersect — any two write quorums share a level-0 member, and a
    /// read quorum of *any* level meets every write quorum on that
    /// level. This is the property the version-check correctness of
    /// Algorithms 1/2 rests on.
    #[test]
    fn generated_shapes_guarantee_quorum_intersection((shape, w, qseed) in shape_and_thresholds()) {
        let thresholds = WriteThresholds::new(&shape, w).unwrap();
        let mut rng = StdRng::seed_from_u64(qseed);
        let wq1 = sample_write_quorum(&shape, &thresholds, &mut rng);
        let wq2 = sample_write_quorum(&shape, &thresholds, &mut rng);
        let level0: BTreeSet<usize> = shape.level_range(0).collect();
        prop_assert!(
            wq1.intersection(&wq2).any(|m| level0.contains(m)),
            "write quorums missed each other on level 0 of {shape}"
        );
        for l in 0..=shape.h() {
            let rl = thresholds.read_threshold(&shape, l);
            let rq = sample_level_members(&shape, l, rl, &mut rng);
            for wq in [&wq1, &wq2] {
                prop_assert!(
                    rq.intersection(wq).next().is_some(),
                    "read level {l} missed a write quorum on {shape}"
                );
            }
        }
    }
}
