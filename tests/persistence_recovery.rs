//! Crash-restart persistence: kill a node mid-write-burst, reopen the
//! append-only log, and check exactly what survived.
//!
//! The crash model follows the [`AppendLogBackend`] contract: everything
//! before `synced_len()` (the log length at the last successful fsync)
//! survives; everything after it *may* vanish. The worst legal crash is
//! therefore "truncate the file to `synced_len`" — the OS dropped every
//! un-synced page — optionally followed by a torn half-record from the
//! append that was in flight. These tests do both, then reopen and
//! compare against the state implied by the synced prefix:
//!
//! * Under `durable_acks(false)` + `FsyncPolicy::EveryN`, acked writes
//!   past the last sync barrier are legally lost — recovery equals the
//!   last fsync'd prefix, bit for bit.
//! * Under durable acks (the default), every acknowledgement implies a
//!   completed fsync, so **no acknowledged write is ever lost**, even
//!   with `FsyncPolicy::Manual` — the ack discipline alone pins
//!   durability. Post-recovery reads replay through the DST
//!   [`HistoryChecker`] and must be accepted against the full history
//!   of acknowledged commits.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use trapezoid_quorum::cluster::{
    AppendLogBackend, Envelope, FsyncPolicy, NodeApi, NodeId, Request, Response, StorageBackend,
    StorageNode,
};
use trapezoid_quorum::sim::dst::HistoryChecker;

/// A unique log path per test (process-scoped; tests clean up after
/// themselves, and reruns overwrite leftovers by truncating on open of
/// a fresh path name).
fn log_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tq-persist-{}-{}.log", tag, std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn ack(node: &StorageNode, req: Request) {
    let reply = node.execute(Envelope::new(req));
    assert_eq!(reply.result, Ok(Response::Ack), "mutation must ack");
}

fn read_block(node: &StorageNode, id: u64) -> Option<(Vec<u8>, u64)> {
    let reply = node.execute(Envelope::new(Request::ReadData { id }));
    match reply.result {
        Ok(Response::Data { bytes, version, .. }) => Some((bytes.to_vec(), version)),
        _ => None,
    }
}

/// The crash itself: chop the log to its last-synced length (the OS
/// lost every un-synced page) and land a torn half-record on the tail
/// (the append in flight when power failed).
fn crash(path: &PathBuf, synced: u64) {
    let f = OpenOptions::new().write(true).open(path).expect("open log");
    f.set_len(synced).expect("truncate to synced prefix");
    drop(f);
    let mut f = OpenOptions::new()
        .append(true)
        .open(path)
        .expect("reopen log");
    // A record header claiming 200 body bytes, followed by only 5:
    // exactly what a mid-append crash leaves behind.
    f.write_all(&200u32.to_le_bytes()).expect("torn len");
    f.write_all(&0xDEAD_BEEFu32.to_le_bytes())
        .expect("torn crc");
    f.write_all(b"torn!").expect("torn body");
}

#[test]
fn recovery_equals_last_fsyncd_prefix() {
    let path = log_path("lazy");
    let backend =
        Arc::new(AppendLogBackend::open(&path, FsyncPolicy::EveryN(5)).expect("open log backend"));
    // Lazy acks: acknowledgements do NOT imply durability, so the sync
    // barrier (every 5 records) is the only thing bounding the loss.
    let node = StorageNode::builder(NodeId(0))
        .backend(backend.clone())
        .durable_acks(false)
        .build();

    // A write burst over 4 blocks. After each ack, record the log
    // offset the mutation's record ends at — the fold of all records
    // ending at or before the final `synced_len` is exactly what a
    // crash must preserve.
    let mut timeline: Vec<(u64, u64, Vec<u8>, u64)> = Vec::new(); // (end_off, id, bytes, version)
    for id in 0..4u64 {
        ack(
            &node,
            Request::InitData {
                id,
                bytes: Bytes::from(vec![id as u8; 16]),
            },
        );
        timeline.push((backend.log_len(), id, vec![id as u8; 16], 0));
    }
    for version in 1..=5u64 {
        for id in 0..4u64 {
            let body = vec![(id as u8) ^ (version as u8).wrapping_mul(31); 16];
            ack(
                &node,
                Request::WriteData {
                    id,
                    bytes: Bytes::from(body.clone()),
                    version,
                },
            );
            timeline.push((backend.log_len(), id, body, version));
        }
    }

    let synced = backend.synced_len();
    let total = backend.log_len();
    assert!(
        synced < total,
        "EveryN(5) with lazy acks must leave an un-synced tail \
         (synced={synced}, log={total})"
    );

    // Expected survivors: per block, the newest record fully inside
    // the synced prefix.
    let mut expected: Vec<Option<(Vec<u8>, u64)>> = vec![None; 4];
    for (end, id, bytes, version) in &timeline {
        if *end <= synced {
            expected[*id as usize] = Some((bytes.clone(), *version));
        }
    }

    drop(node);
    drop(backend);
    crash(&path, synced);

    let reopened = Arc::new(
        AppendLogBackend::open(&path, FsyncPolicy::EveryN(5)).expect("reopen after crash"),
    );
    assert_eq!(
        reopened.log_len(),
        synced,
        "torn tail must be truncated back to the valid prefix"
    );
    let recovered = StorageNode::builder(NodeId(0))
        .backend(reopened.clone())
        .build();
    for id in 0..4u64 {
        let got = read_block(&recovered, id);
        let want = expected[id as usize].clone();
        assert_eq!(
            got, want,
            "block {id}: recovered state must equal the last fsync'd prefix"
        );
    }

    let _ = std::fs::remove_file(&path);
}

/// Silent media rot, not a crash: flip one bit inside a fully-fsync'd
/// record's payload while the log is closed, then reopen. The per-record
/// crc32 must catch the flip during replay — the rotten record (and, by
/// the append-only contract, everything after it) is truncated away, and
/// **no corrupt payload is ever reconstructed into the index**. Every
/// block the recovered node serves passes its self-check; the damaged
/// block simply reverts to its last intact state.
#[test]
fn on_disk_bit_flip_is_caught_by_record_checksums() {
    let path = log_path("bitflip");
    let backend =
        Arc::new(AppendLogBackend::open(&path, FsyncPolicy::EveryN(1)).expect("open log backend"));
    let node = StorageNode::builder(NodeId(0))
        .backend(backend.clone())
        .build();

    // Five blocks initialised, then overwritten at version 1; remember
    // where each record ends so the flip can be aimed precisely.
    let mut record_ends: Vec<u64> = Vec::new();
    for id in 0..5u64 {
        ack(
            &node,
            Request::InitData {
                id,
                bytes: Bytes::from(vec![0x10 + id as u8; 16]),
            },
        );
        record_ends.push(backend.log_len());
    }
    for id in 0..5u64 {
        ack(
            &node,
            Request::WriteData {
                id,
                bytes: Bytes::from(vec![0xA0 ^ id as u8; 16]),
                version: 1,
            },
        );
        record_ends.push(backend.log_len());
    }
    assert_eq!(
        backend.synced_len(),
        backend.log_len(),
        "EveryN(1) leaves nothing un-synced — the flip hits durable bytes"
    );
    drop(node);
    drop(backend);

    // Flip one bit in the payload of record 7 (block 2's version-1
    // write): 8 bytes of record header, then kind·id·version·len = 21
    // bytes of body framing before the payload starts.
    let flip_at = record_ends[6] + 8 + 21 + 3;
    let mut raw = std::fs::read(&path).expect("read log");
    raw[flip_at as usize] ^= 0x08;
    std::fs::write(&path, &raw).expect("write flipped log");

    let reopened = Arc::new(
        AppendLogBackend::open(&path, FsyncPolicy::EveryN(1)).expect("reopen after bit flip"),
    );
    assert_eq!(
        reopened.log_len(),
        record_ends[6],
        "replay must truncate at the rotten record, not replay past it"
    );
    let recovered = StorageNode::builder(NodeId(0))
        .backend(reopened.clone())
        .build();
    for id in 0..5u64 {
        let (bytes, version) = read_block(&recovered, id).expect("block survives rot");
        let (want_bytes, want_version) = if id < 2 {
            (vec![0xA0 ^ id as u8; 16], 1) // written before the rotten record
        } else {
            (vec![0x10 + id as u8; 16], 0) // reverted to the intact prefix
        };
        assert_eq!(version, want_version, "block {id} version after rot");
        assert_eq!(
            bytes, want_bytes,
            "block {id} must never serve flipped bytes"
        );
        // Belt and suspenders: the index entry itself carries a valid
        // self-check — replay re-stamped it from the verified payload.
        let stored = reopened.get(id).expect("backend get").expect("present");
        assert!(stored.self_check_ok(), "block {id} self-check after replay");
    }

    // The truncated log accepts fresh appends cleanly.
    let reply = recovered.execute(Envelope::new(Request::WriteData {
        id: 2,
        bytes: Bytes::from(vec![0x77; 16]),
        version: 1,
    }));
    assert_eq!(reply.result, Ok(Response::Ack), "post-rot append works");
    assert_eq!(
        read_block(&recovered, 2),
        Some((vec![0x77; 16], 1)),
        "block 2 heals by rewrite"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn durable_acks_lose_no_acknowledged_write() {
    let path = log_path("durable");
    // FsyncPolicy::Manual: the log itself never syncs on its own — if
    // anything survives, it is the flush-before-ack discipline doing it.
    let backend =
        Arc::new(AppendLogBackend::open(&path, FsyncPolicy::Manual).expect("open log backend"));
    let node = StorageNode::builder(NodeId(0))
        .backend(backend.clone())
        .build(); // durable_acks defaults to true

    // Acknowledged history, mirrored into the DST checker exactly as
    // the simulation harness would record completed writes.
    let initial: Vec<Vec<u8>> = (0..3u64).map(|id| vec![id as u8; 8]).collect();
    let mut checker = HistoryChecker::new(&initial);
    for (id, body) in initial.iter().enumerate() {
        ack(
            &node,
            Request::InitData {
                id: id as u64,
                bytes: Bytes::from(body.clone()),
            },
        );
    }
    let mut op = 0usize;
    for version in 1..=7u64 {
        for id in 0..3u64 {
            let body = vec![(0x40 + id as u8) ^ (version as u8); 8];
            ack(
                &node,
                Request::WriteData {
                    id,
                    bytes: Bytes::from(body.clone()),
                    version,
                },
            );
            checker
                .commit(id as usize, &body, version, op)
                .expect("acknowledged write commits cleanly");
            op += 1;
        }
    }

    // Every ack implied an fsync: the synced prefix IS the whole log.
    let synced = backend.synced_len();
    assert_eq!(
        synced,
        backend.log_len(),
        "durable acks must leave no un-synced tail even under FsyncPolicy::Manual"
    );

    drop(node);
    drop(backend);
    crash(&path, synced);

    let reopened =
        Arc::new(AppendLogBackend::open(&path, FsyncPolicy::Manual).expect("reopen after crash"));
    let recovered = StorageNode::builder(NodeId(0))
        .backend(reopened.clone())
        .build();

    // Post-recovery reads must satisfy the same checker that witnessed
    // the acknowledged history: no stale version, no foreign bytes.
    for id in 0..3u64 {
        let (bytes, version) = read_block(&recovered, id).expect("acknowledged block survives");
        assert_eq!(version, 7, "block {id} lost acknowledged writes");
        checker
            .observe_read(id as usize, &bytes, version, op)
            .expect("post-recovery read accepted by the history checker");
        op += 1;
    }

    let _ = std::fs::remove_file(&path);
}
