//! Deterministic-simulation matrix over the store backends.
//!
//! Every seed drives an adversarial workload (message loss, duplication,
//! reordering, one-directional partitions, crash-restart with durable or
//! volatile disks, and — on the at-least-once axis — cross-round
//! redelivery of stale requests and replies) against each of the four
//! `QuorumStore` backends
//! through the seeded virtual-time `SimTransport`, with every operation
//! validated online by the `dst::HistoryChecker`. A failing seed is
//! minimized to its shortest failing op prefix and written to
//! `target/sim-dst/failing-seeds.txt` so CI can upload it as an
//! artifact; replaying the same `CaseConfig` reproduces the violation
//! bit-for-bit.
//!
//! Every case runs *hedged*: `run_case` pins `HedgePolicy::P99`, the
//! scenario links draw heavy-tailed service times, and the workloads
//! degrade nodes into gray stragglers — so straggler re-issues, adaptive
//! per-node deadlines and retry-budget spends all execute under the
//! checker. The matrices assert the hedge counters are non-vacuous: the
//! clean verdict covers schedules where hedges genuinely fired and
//! duplicate replies genuinely arrived.
//!
//! `TQ_DST_SEED_BASE` offsets the seed range — the scheduled CI job sets
//! it to a fresh random base on every run.

use std::sync::Arc;

use trapezoid_quorum::protocol::{
    BatchReads, BatchWrite, BatchWrites, OpReport, ProtocolError, ReadOutcome, ScrubReport,
    StoreInfo, WriteOutcome,
};
use trapezoid_quorum::sim::dst::{
    self, minimize, run_case, Backend, CaseConfig, HistoryChecker, Scenario, ViolationKind,
    WorkloadOp,
};
use trapezoid_quorum::{BlockAddr, NetworkModel, QuorumStore, SimTransport};

fn seed_base() -> u64 {
    match std::env::var("TQ_DST_SEED_BASE") {
        // A set-but-unparsable base must fail loudly: silently falling
        // back to 0 would make the nightly randomized sweep re-test the
        // fixed matrix forever while reporting green.
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("TQ_DST_SEED_BASE {s:?} is not a u64: {e}")),
        Err(_) => 0,
    }
}

/// The acceptance matrix: 64 seeds × all four backends, scenarios
/// rotating per seed so every backend meets every adversarial regime —
/// with the storage fault axis (fsync-barrier crash reverts, silently
/// dropped fsyncs, slow reads) switched on for every other seed, and
/// the *corrupting* axis (bit-flipped and misdirected served blocks) on
/// every fourth, so each scenario runs with pristine disks, with lying
/// ones, and with rotting ones. A corrupting node that slipped a bad
/// block past the checksums would surface as a `ForeignValue` or
/// `VersionValueConflict` violation here.
#[test]
fn seed_matrix_stays_checker_clean_across_all_backends() {
    let scenarios = Scenario::all();
    let base = seed_base();
    let mut failures = Vec::new();
    let (mut commits, mut reads_ok, mut corrupted) = (0u64, 0u64, 0u64);
    let (mut hedges_fired, mut hedges_absorbed) = (0u64, 0u64);

    for seed in 0..64u64 {
        let mut scenario = scenarios[(seed % scenarios.len() as u64) as usize].clone();
        if seed % 2 == 1 {
            scenario = scenario.with_storage_faults();
        } else if seed % 4 == 2 {
            scenario = scenario.with_corruption();
        }
        for backend in Backend::ALL {
            let cfg = CaseConfig {
                seed: base.wrapping_add(seed),
                backend,
                scenario: scenario.clone(),
                ops: 28,
            };
            let report = run_case(&cfg);
            commits += report.stats.commits;
            reads_ok += report.stats.reads_ok;
            corrupted += report.corrupted_reads;
            hedges_fired += report.sim.hedges_fired;
            hedges_absorbed += report.sim.hedges_won + report.sim.hedge_dups;
            if report.violation.is_some() {
                let minimal = minimize(&cfg).expect("violation reproduces");
                failures.push(format!(
                    "seed={} backend={} scenario={} minimized_ops={} violation={}",
                    cfg.seed,
                    backend.label(),
                    scenario.name,
                    minimal.config.ops,
                    minimal
                        .violation
                        .as_ref()
                        .expect("minimized case still violates"),
                ));
            }
        }
    }

    if !failures.is_empty() {
        let dir = std::path::Path::new("target/sim-dst");
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("failing-seeds.txt"), failures.join("\n"));
        panic!(
            "{} consistency violation(s) — replay with the CaseConfig above:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }

    // Non-vacuity: the adversarial schedules must still let plenty of
    // operations complete, or the checker proved nothing — and the
    // corruption seeds must have actually served corrupted copies, or
    // the integrity claim is vacuous too.
    assert!(commits > 300, "workload vacuous: only {commits} commits");
    assert!(reads_ok > 600, "workload vacuous: only {reads_ok} reads");
    assert!(
        corrupted > 200,
        "corruption axis vacuous: only {corrupted} corrupted reads served"
    );
    // The hedging claim needs teeth too: across the matrix, straggler
    // re-issues must actually have fired, and some must have raced their
    // original to completion (a win or an absorbed duplicate) — or the
    // clean verdict says nothing about the dup-reply hardening.
    assert!(
        hedges_fired > 100,
        "hedging vacuous: only {hedges_fired} hedges fired across the matrix"
    );
    assert!(
        hedges_absorbed > 20,
        "hedging vacuous: only {hedges_absorbed} hedge wins/dups absorbed"
    );
}

/// The at-least-once acceptance matrix: the same 64 seeds × 4 backends,
/// all under a schedule with cross-round redelivery and heavy
/// duplication enabled. Zero violations here is the end-to-end claim of
/// the idempotent command API: stale `WriteData`s landing rounds late
/// ack harmlessly against the monotone guards, duplicated folds are
/// absorbed by the applied-op window, and stale acks surfacing in later
/// rounds are discarded by op-id identity instead of faking quorums.
#[test]
fn at_least_once_matrix_stays_checker_clean_across_all_backends() {
    let base = seed_base();
    let mut failures = Vec::new();
    let (mut commits, mut reads_ok, mut redelivered) = (0u64, 0u64, 0u64);
    let mut hedges_fired = 0u64;

    for seed in 0..64u64 {
        // The storage fault and corruption axes rotate through this
        // matrix too: at-least-once delivery, lying disks and rotting
        // disks all compose.
        let scenario = if seed % 2 == 1 {
            Scenario::at_least_once().with_storage_faults()
        } else if seed % 4 == 2 {
            Scenario::at_least_once().with_corruption()
        } else {
            Scenario::at_least_once()
        };
        for backend in Backend::ALL {
            let cfg = CaseConfig {
                seed: base.wrapping_add(seed),
                backend,
                scenario: scenario.clone(),
                ops: 28,
            };
            let report = run_case(&cfg);
            commits += report.stats.commits;
            reads_ok += report.stats.reads_ok;
            redelivered += report.sim.redelivered;
            hedges_fired += report.sim.hedges_fired;
            if report.violation.is_some() {
                let minimal = minimize(&cfg).expect("violation reproduces");
                failures.push(format!(
                    "seed={} backend={} scenario={} minimized_ops={} violation={}",
                    cfg.seed,
                    backend.label(),
                    scenario.name,
                    minimal.config.ops,
                    minimal
                        .violation
                        .as_ref()
                        .expect("minimized case still violates"),
                ));
            }
        }
    }

    if !failures.is_empty() {
        let dir = std::path::Path::new("target/sim-dst");
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("failing-seeds.txt"), failures.join("\n"));
        panic!(
            "{} consistency violation(s) under at-least-once delivery:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }

    // Non-vacuity: plenty of completed work *and* plenty of genuinely
    // stale cross-round traffic, or the at-least-once axis proved
    // nothing.
    assert!(commits > 300, "workload vacuous: only {commits} commits");
    assert!(reads_ok > 600, "workload vacuous: only {reads_ok} reads");
    assert!(
        redelivered > 500,
        "at-least-once vacuous: only {redelivered} cross-round redeliveries"
    );
    // Hedge re-issues under an at-least-once fabric are the hardest
    // duplication case — the same op-id may arrive thrice (original,
    // redelivery, hedge). The clean verdict must cover it non-vacuously.
    assert!(
        hedges_fired > 100,
        "hedging vacuous: only {hedges_fired} hedges fired under at-least-once"
    );
}

/// The repro contract: one `CaseConfig` fully determines the run.
#[test]
fn any_seed_replays_bit_for_bit() {
    for (i, backend) in Backend::ALL.into_iter().enumerate() {
        for scenario in [Scenario::chaos(), Scenario::at_least_once()] {
            let cfg = CaseConfig {
                seed: 0xDEAD_BEEF + i as u64,
                backend,
                scenario,
                ops: 30,
            };
            let first = run_case(&cfg);
            let second = run_case(&cfg);
            assert_eq!(first, second, "{} replay diverged", backend.label());
        }
    }
}

/// A clean case has nothing to minimize.
#[test]
fn minimize_returns_none_without_a_violation() {
    let cfg = CaseConfig {
        seed: 3,
        backend: Backend::Majority,
        scenario: Scenario::loss_and_reorder(),
        ops: 20,
    };
    assert!(minimize(&cfg).is_none());
}

/// A store wrapper with a deliberate version-regression bug: reads
/// report one version lower than the quorum served. The checker must
/// catch it on the first read after a completed write.
struct VersionRegressingStore {
    inner: Box<dyn QuorumStore>,
}

impl QuorumStore for VersionRegressingStore {
    fn info(&self) -> StoreInfo {
        self.inner.info()
    }
    fn create(&self, stripe: u64, blocks: Vec<Vec<u8>>) -> Result<OpReport, ProtocolError> {
        self.inner.create(stripe, blocks)
    }
    fn read(&self, addr: BlockAddr) -> Result<ReadOutcome, ProtocolError> {
        self.inner.read(addr).map(|mut out| {
            out.version = out.version.saturating_sub(1); // the bug
            out
        })
    }
    fn write(&self, addr: BlockAddr, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        self.inner.write(addr, new)
    }
    fn read_batch(&self, addrs: &[BlockAddr]) -> BatchReads {
        self.inner.read_batch(addrs)
    }
    fn write_batch(&self, items: &[BatchWrite<'_>]) -> BatchWrites {
        self.inner.write_batch(items)
    }
    fn scrub(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        self.inner.scrub(stripe)
    }
}

#[test]
fn injected_version_regression_is_caught_by_the_checker() {
    let cluster = trapezoid_quorum::Cluster::new(dst::CLUSTER_NODES);
    let sim = Arc::new(SimTransport::with_model(
        cluster,
        99,
        NetworkModel::reliable(),
    ));
    let initial: Vec<Vec<u8>> = (0..dst::BLOCKS).map(|i| dst::payload(i as u8)).collect();
    let store = Backend::TrapErc.build(Arc::clone(&sim));
    store.create(dst::STRIPE, initial.clone()).unwrap();
    let buggy = VersionRegressingStore { inner: store };

    let calm = Scenario {
        name: "calm",
        model: NetworkModel::reliable(),
        weights: [1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        wipe_prob: 0.0,
        max_down: 0,
        max_wiped: 0,
        storage_faults: None,
    };
    let ops = vec![
        WorkloadOp::Write {
            block: 0,
            fill: 0xAB,
        },
        WorkloadOp::Read { block: 0 },
    ];
    let mut checker = HistoryChecker::new(&initial);
    let (_stats, violation) = dst::run_workload(&buggy, &sim, &calm, &ops, &mut checker);
    let v = violation.expect("the checker must catch the injected regression");
    assert!(
        matches!(v.kind, ViolationKind::StaleRead { floor: 1, got: 0 }),
        "unexpected violation {v:?}"
    );
    assert_eq!(v.op_index, 1, "caught at the read, the minimal prefix");
    assert_eq!(v.block, 0);
}

/// Volatile crashes lose disks; the quiesced scrub reinstalls them and
/// the history stays clean through the loss-and-recovery cycle.
#[test]
fn volatile_crash_recovery_cycle_is_clean_on_every_backend() {
    for backend in Backend::ALL {
        let scenario = Scenario::crash_restart();
        let ops = vec![
            WorkloadOp::Write {
                block: 1,
                fill: 0x11,
            },
            WorkloadOp::Crash {
                node: 1,
                durable: false,
                after: 100,
            },
            WorkloadOp::Advance { dt: 10_000 },
            WorkloadOp::Read { block: 1 },
            WorkloadOp::Write {
                block: 1,
                fill: 0x22,
            },
            WorkloadOp::Scrub,
            WorkloadOp::Read { block: 1 },
            WorkloadOp::Write {
                block: 1,
                fill: 0x33,
            },
            WorkloadOp::Read { block: 1 },
        ];
        let cluster = trapezoid_quorum::Cluster::new(dst::CLUSTER_NODES);
        let sim = Arc::new(SimTransport::with_model(
            cluster,
            7,
            NetworkModel::reliable(),
        ));
        let initial: Vec<Vec<u8>> = (0..dst::BLOCKS).map(|i| dst::payload(i as u8)).collect();
        let store = backend.build(Arc::clone(&sim));
        store.create(dst::STRIPE, initial.clone()).unwrap();
        let mut checker = HistoryChecker::new(&initial);
        let (stats, violation) =
            dst::run_workload(store.as_ref(), &sim, &scenario, &ops, &mut checker);
        assert!(violation.is_none(), "{}: {:?}", backend.label(), violation);
        assert!(stats.scrubs_ok >= 1, "{}", backend.label());
    }
}
