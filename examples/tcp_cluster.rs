//! TRAP-ERC over real sockets: a (5, 3) stripe served by five node
//! processes-in-miniature, each hosted behind a loopback TCP listener,
//! driven through the exact same `QuorumStore` API as the simulated
//! examples.
//!
//! ```text
//! cargo run --example tcp_cluster
//! TQ_NODE_BACKEND=applog cargo run --example tcp_cluster   # log-backed nodes
//! ```
//!
//! The only line that differs from `quickstart` is the transport: a
//! [`TcpTransport`] speaking the versioned wire format instead of a
//! [`trapezoid_quorum::LocalTransport`] calling nodes in-process. Every
//! protocol algorithm — quorum writes, delta parity folds, the decode
//! read path when a node dies — runs unchanged over the sockets.

use std::net::SocketAddr;
use std::sync::Arc;

use trapezoid_quorum::cluster::storage::default_backend;
use trapezoid_quorum::cluster::{NodeApi, NodeId, StorageNode, TcpNodeServer};
use trapezoid_quorum::protocol::store::BlockAddr;
use trapezoid_quorum::{QuorumStore, Store, TcpTransport};

fn main() {
    // Five storage nodes, each on its own loopback listener. The
    // backend is picked by TQ_NODE_BACKEND (memory by default; set
    // `applog` for crash-safe append-only logs with flush-before-ack
    // durability — every acknowledged write then survives a restart).
    let nodes: Vec<Arc<StorageNode>> = (0..5)
        .map(|i| {
            Arc::new(
                StorageNode::builder(NodeId(i))
                    .backend(default_backend(i))
                    .build(),
            )
        })
        .collect();
    let servers: Vec<TcpNodeServer> = nodes
        .iter()
        .map(|n| {
            let api: Arc<dyn NodeApi> = n.clone();
            TcpNodeServer::spawn(api, "127.0.0.1:0").expect("bind loopback listener")
        })
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    for (i, a) in addrs.iter().enumerate() {
        println!("node N_{i} listening on {a}");
    }

    // A (5, 3) MDS stripe: 3 data + 2 parity blocks, any 3 of 5
    // reconstruct everything. Each data block's trapezoid spans
    // n − k + 1 = 3 nodes (shape a=1, b=1, h=1: one node at level 0,
    // two at level 1).
    let store = Store::trap_erc(5, 3)
        .shape(1, 1, 1)
        .uniform_w(1)
        .transport(TcpTransport::connect(addrs))
        .build()
        .expect("valid parameters");
    let info = store.info();
    println!(
        "store: {} (n={}, k={}) over TCP, {:.3} blocks stored per data block",
        info.protocol, info.n, info.k, info.storage_overhead
    );

    // Provision and mutate — Algorithm 1 runs over the sockets: the
    // client reads the old chunk, writes the data node, and ships each
    // parity node its delta, all as length-prefixed wire frames.
    let blocks: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 1024]).collect();
    store.create(1, blocks).expect("create with all nodes up");
    println!("stripe 1 created: 3 data + 2 parity blocks of 1 KiB");

    let payload = vec![0xAB; 1024];
    let outcome = store
        .write(BlockAddr::new(1, 1), &payload)
        .expect("write quorum over TCP");
    println!(
        "write: block 1 -> version {} ({} rounds, {} messages on the wire)",
        outcome.version,
        outcome.report.network_rounds(),
        outcome.report.messages()
    );

    let read = store.read(BlockAddr::new(1, 1)).expect("direct read");
    assert_eq!(read.bytes, payload);
    println!("read: version {} via {:?}", read.version, read.path);

    // Kill block 1's data node — drop its listener, connections and
    // all. Algorithm 2 Case 2 takes over: the version check completes
    // on the surviving trapezoid levels and the block is decoded from
    // k = 3 consistent stripe nodes.
    let mut servers = servers;
    drop(servers.remove(1));
    println!("node N_1's listener dropped (connection refused from here on)");

    let read = store.read(BlockAddr::new(1, 1)).expect("decode path");
    assert_eq!(read.bytes, payload);
    println!(
        "read with N_1 down: version {} via {:?} — reconstructed over TCP",
        read.version, read.path
    );
}
