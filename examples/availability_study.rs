//! Availability study: the paper's Fig. 3 comparison, live at your
//! terminal — closed forms (eqs. 10 and 13) against the *executed*
//! protocols under sampled fail-stop faults.
//!
//! ```text
//! cargo run --release --example availability_study [trials]
//! ```

use trapezoid_quorum::quorum::availability;
use trapezoid_quorum::sim::monte_carlo;
use trapezoid_quorum::{Cluster, LocalTransport, QuorumStore, Store};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    // The reconstructed Fig. 3 configuration: (15, 8) stripe, trapezoid
    // a=0, b=4, h=1 (levels of 4 and 4), w = 2. The builder is the one
    // place the deployment is described; the simulator reuses the
    // resulting validated config.
    let client = Store::trap_erc(15, 8)
        .shape(0, 4, 1)
        .uniform_w(2)
        .transport(LocalTransport::new(Cluster::new(15)))
        .build_trap_erc()
        .expect("valid parameters");
    let config = client.config().clone();
    let (shape, th) = (*config.shape(), config.thresholds().clone());
    println!("configuration: {config}");
    println!("trials per point: {trials}\n");

    println!(
        "{:>5} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "p", "eq10 FR", "sim FR", "eq13 ERC", "sim ERC", "eq9 write", "sim write"
    );
    println!("{}", "-".repeat(72));
    for i in 1..10 {
        let p = i as f64 / 10.0;
        let fr_analytic = availability::read_availability_fr(&shape, &th, p);
        let fr_sim = monte_carlo::protocol_fr_read_availability(&shape, &th, p, trials, 100 + i);
        let erc_analytic = availability::read_availability_erc(&shape, &th, 15, 8, p);
        let erc_sim = monte_carlo::protocol_read_availability(&config, p, trials, 200 + i);
        let w_analytic = availability::write_availability(&shape, &th, p);
        let w_sim = monte_carlo::protocol_write_availability(&config, p, trials, 300 + i, true);
        println!(
            "{:>5.2} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            p,
            fr_analytic,
            fr_sim.mean(),
            erc_analytic,
            erc_sim.mean(),
            w_analytic,
            w_sim.mean()
        );
    }

    println!();
    println!("shape checks (the paper's qualitative claims):");
    let fr_05 = availability::read_availability_fr(&shape, &th, 0.5);
    let erc_05 = availability::read_availability_erc(&shape, &th, 15, 8, 0.5);
    println!("  * p = 0.5 anchors: FR = {fr_05:.3} (paper ~0.75), ERC = {erc_05:.3} (paper ~0.63)");
    let fr_08 = availability::read_availability_fr(&shape, &th, 0.8);
    let erc_08 = availability::read_availability_erc(&shape, &th, 15, 8, 0.8);
    println!(
        "  * p = 0.8: FR - ERC = {:+.4} (paper: 'no difference when p >= 0.8')",
        fr_08 - erc_08
    );

    // Eqs. 14/15 straight from the stores' own descriptors: every
    // protocol reports its storage price through one `StoreInfo`.
    println!("  * storage per data block (each store's own StoreInfo):");
    let stores: Vec<Box<dyn QuorumStore>> = vec![
        Store::trap_erc(15, 8)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(LocalTransport::new(Cluster::new(15)))
            .build()
            .expect("valid"),
        Store::trap_fr(15, 8)
            .shape(0, 4, 1)
            .uniform_w(2)
            .transport(LocalTransport::new(Cluster::new(15)))
            .build()
            .expect("valid"),
        Store::rowa(8)
            .transport(LocalTransport::new(Cluster::new(8)))
            .build()
            .expect("valid"),
        Store::majority(8)
            .transport(LocalTransport::new(Cluster::new(8)))
            .build()
            .expect("valid"),
    ];
    for store in &stores {
        let info = store.info();
        println!(
            "      {:>9}: {:>6.3} blocks ({} nodes)",
            info.protocol, info.storage_overhead, info.nodes
        );
    }
    assert!(
        (stores[0].info().storage_overhead - availability::storage_erc(15, 8)).abs() < 1e-12,
        "StoreInfo must agree with eq. 15"
    );
    assert!(
        (stores[1].info().storage_overhead - availability::storage_fr(15, 8)).abs() < 1e-12,
        "StoreInfo must agree with eq. 14"
    );
}
