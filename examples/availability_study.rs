//! Availability study: the paper's Fig. 3 comparison, live at your
//! terminal — closed forms (eqs. 10 and 13) against the *executed*
//! protocols under sampled fail-stop faults.
//!
//! ```text
//! cargo run --release --example availability_study [trials]
//! ```

use trapezoid_quorum::quorum::availability;
use trapezoid_quorum::sim::monte_carlo;
use trapezoid_quorum::ProtocolConfig;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    // The reconstructed Fig. 3 configuration: (15, 8) stripe, trapezoid
    // a=0, b=4, h=1 (levels of 4 and 4), w = 2.
    let config = ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).expect("valid parameters");
    let (shape, th) = (*config.shape(), config.thresholds().clone());
    println!("configuration: {config}");
    println!("trials per point: {trials}\n");

    println!(
        "{:>5} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "p", "eq10 FR", "sim FR", "eq13 ERC", "sim ERC", "eq9 write", "sim write"
    );
    println!("{}", "-".repeat(72));
    for i in 1..10 {
        let p = i as f64 / 10.0;
        let fr_analytic = availability::read_availability_fr(&shape, &th, p);
        let fr_sim = monte_carlo::protocol_fr_read_availability(&shape, &th, p, trials, 100 + i);
        let erc_analytic = availability::read_availability_erc(&shape, &th, 15, 8, p);
        let erc_sim = monte_carlo::protocol_read_availability(&config, p, trials, 200 + i);
        let w_analytic = availability::write_availability(&shape, &th, p);
        let w_sim = monte_carlo::protocol_write_availability(&config, p, trials, 300 + i, true);
        println!(
            "{:>5.2} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            p,
            fr_analytic,
            fr_sim.mean(),
            erc_analytic,
            erc_sim.mean(),
            w_analytic,
            w_sim.mean()
        );
    }

    println!();
    println!("shape checks (the paper's qualitative claims):");
    let fr_05 = availability::read_availability_fr(&shape, &th, 0.5);
    let erc_05 = availability::read_availability_erc(&shape, &th, 15, 8, 0.5);
    println!("  * p = 0.5 anchors: FR = {fr_05:.3} (paper ~0.75), ERC = {erc_05:.3} (paper ~0.63)");
    let fr_08 = availability::read_availability_fr(&shape, &th, 0.8);
    let erc_08 = availability::read_availability_erc(&shape, &th, 15, 8, 0.8);
    println!(
        "  * p = 0.8: FR - ERC = {:+.4} (paper: 'no difference when p >= 0.8')",
        fr_08 - erc_08
    );
    println!(
        "  * storage: FR {} blocks vs ERC {:.3} blocks per data block (eqs. 14/15)",
        availability::storage_fr(15, 8),
        availability::storage_erc(15, 8)
    );
}
