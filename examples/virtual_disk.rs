//! The paper's motivating workload: a virtual-machine disk image that
//! *must* stay strictly consistent while living on erasure-coded storage.
//!
//! §I: "when users' data stored on virtual disks is accessed by several
//! virtual machines, a strict consistency protocol is required in any
//! case to avoid incoherent data." Append-only schemes (the related work)
//! cannot host such disks; TRAP-ERC can.
//!
//! This example builds a small virtual disk from many (15, 8) stripes
//! behind the protocol-agnostic `QuorumStore` facade and runs a
//! random-write workload through failure windows: at each window boundary
//! every node returns, a scrub pass repairs accumulated staleness (the
//! repair extension — the paper itself has no anti-entropy path, and
//! without one, missed parity deltas accumulate until even a fully-live
//! cluster cannot assemble k consistent nodes), and then up to three
//! fresh nodes fail for the next window. A final audit checks every
//! logical block against a shadow copy — in one batched, fused-fan-out
//! read per stripe.
//!
//! ```text
//! cargo run --release --example virtual_disk
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapezoid_quorum::{BlockAddr, Cluster, FaultInjector, LocalTransport, QuorumStore, Store};

const BLOCK_SIZE: usize = 1024;
const STRIPES: usize = 16;
const K: usize = 8;
const OPS: usize = 400;
const WINDOW: usize = 25;

/// Logical block address → (stripe id, block index).
fn locate(lba: usize) -> BlockAddr {
    BlockAddr::new((lba / K) as u64, lba % K)
}

fn main() {
    let cluster = Cluster::new(15);
    let store = Store::trap_erc(15, K)
        .shape(0, 4, 1)
        .uniform_w(2)
        .transport(LocalTransport::new(cluster.clone()))
        .build()
        .expect("valid parameters");

    for stripe in 0..STRIPES as u64 {
        let blocks = vec![vec![0u8; BLOCK_SIZE]; K];
        store.create(stripe, blocks).expect("all nodes up");
    }
    let disk_blocks = STRIPES * K;
    println!(
        "virtual disk: {} logical blocks x {} B = {} KiB on a 15-node cluster ((15,8) MDS)",
        disk_blocks,
        BLOCK_SIZE,
        disk_blocks * BLOCK_SIZE / 1024
    );

    // Shadow copy = the last value the "VM" knows was committed.
    // Rejected writes are *uncertain*: Algorithm 1 has no rollback, so a
    // failed write may or may not become visible later — exactly the
    // anomaly a real initiator must handle. We remember the attempted
    // payload and accept either value from then on.
    let mut shadow = vec![vec![0u8; BLOCK_SIZE]; disk_blocks];
    let mut uncertain: HashMap<usize, Vec<u8>> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(2015);
    let mut injector = FaultInjector::new(42);

    let mut committed = 0usize;
    let mut rejected = 0usize;
    let mut reads_checked = 0usize;
    let mut scrubbed_nodes = 0usize;
    for op in 0..OPS {
        // Window boundary: full recovery, scrub, then a fresh failure set
        // of up to 3 nodes (well inside the n - k = 7 code tolerance, so
        // scrubs always succeed and committed data stays readable).
        if op % WINDOW == 0 {
            for node in 0..15 {
                cluster.revive(node);
            }
            let mut repaired = 0usize;
            for stripe in 0..STRIPES as u64 {
                repaired += store
                    .scrub(stripe)
                    .expect("scrub with all nodes up")
                    .refreshed
                    .len();
            }
            scrubbed_nodes += repaired;
            let failures = (op / WINDOW) % 4; // 0, 1, 2, 3, 0, ...
            let killed = injector.kill_exactly(&cluster, failures);
            println!(
                "op {op:3}: window boundary — scrub refreshed {repaired} states, now down = {killed:?}"
            );
        }

        let lba = rng.random_range(0..disk_blocks);
        let addr = locate(lba);
        if rng.random_bool(0.3) {
            // A VM read: must return the committed value (or the
            // uncertain one, if the last write to this block failed).
            if let Ok(out) = store.read(addr) {
                let ok = out.bytes == shadow[lba]
                    || uncertain.get(&lba).is_some_and(|u| out.bytes == *u);
                assert!(
                    ok,
                    "lba {lba}: read returned neither committed nor uncertain value"
                );
                reads_checked += 1;
            }
            continue;
        }
        let mut payload = vec![0u8; BLOCK_SIZE];
        rng.fill(payload.as_mut_slice());
        match store.write(addr, &payload) {
            Ok(_) => {
                shadow[lba] = payload;
                uncertain.remove(&lba);
                committed += 1;
            }
            Err(_) => {
                uncertain.insert(lba, payload);
                rejected += 1;
            }
        }
    }

    // Full recovery, final scrub, then audit every logical block —
    // stripe by stripe through the batched read path (one fused fan-out
    // per level per stripe instead of one per block).
    for node in 0..15 {
        cluster.revive(node);
    }
    for stripe in 0..STRIPES as u64 {
        store.scrub(stripe).expect("cluster fully up");
    }
    let mut direct = 0usize;
    let mut decoded = 0usize;
    let mut audit_rounds = 0usize;
    for stripe in 0..STRIPES {
        let addrs: Vec<BlockAddr> = (0..K)
            .map(|block| BlockAddr::new(stripe as u64, block))
            .collect();
        let batch = store.read_batch(&addrs);
        audit_rounds += batch.report.network_rounds();
        for (block, out) in batch.outcomes.into_iter().enumerate() {
            let lba = stripe * K + block;
            let out = out.expect("scrubbed cluster");
            let ok =
                out.bytes == shadow[lba] || uncertain.get(&lba).is_some_and(|u| out.bytes == *u);
            assert!(
                ok,
                "lba {lba}: content matches neither committed nor uncertain value"
            );
            if out.decoded() {
                decoded += 1;
            } else {
                direct += 1;
            }
        }
    }
    println!(
        "\nworkload: {committed} committed writes, {rejected} rejected (no quorum at the time), \
         {} blocks left uncertain, {reads_checked} mid-run reads verified",
        uncertain.len()
    );
    println!(
        "audit: all {disk_blocks} blocks consistent ({direct} direct, {decoded} decoded) in \
         {audit_rounds} fused rounds — {} blocks per round",
        disk_blocks / audit_rounds.max(1)
    );
    println!("scrub passes refreshed {scrubbed_nodes} node-stripe states during the run");
    let io = cluster.io_totals();
    println!(
        "cluster IO: {} block reads / {} block writes / {} parity folds; {} rejected requests",
        io.reads, io.writes, io.parity_adds, io.rejected
    );
    println!("strict consistency held across {OPS} operations with fail-stop churn.");
}
