//! Quickstart: strict-consistency reads and writes over an erasure-coded
//! stripe through the unified `QuorumStore` API, surviving node failures.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use trapezoid_quorum::protocol::store::{BatchWrite, BlockAddr};
use trapezoid_quorum::{Cluster, LocalTransport, QuorumStore, Store};

fn main() {
    // A (9, 6) MDS stripe — the paper's §I example: 6 data blocks, 3
    // parity blocks, any 6 of 9 reconstruct everything. Each data block's
    // consistency is managed by a trapezoid of n-k+1 = 4 nodes
    // (a=2, b=1, h=1: one node at level 0, three at level 1).
    let cluster = Cluster::new(9);
    let store = Store::trap_erc(9, 6)
        .shape(2, 1, 1)
        .uniform_w(1)
        .transport(LocalTransport::new(cluster.clone()))
        .build()
        .expect("valid parameters");
    let info = store.info();
    println!(
        "store: {} (n={}, k={}, shape={:?}, {:.3} blocks stored per data block)",
        info.protocol,
        info.n,
        info.k,
        info.shape.expect("trapezoid protocol"),
        info.storage_overhead
    );

    // Provision a stripe of 6 × 4 KiB blocks.
    let blocks: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 4096]).collect();
    store
        .create(1, blocks)
        .expect("provisioning with all nodes up");
    println!("stripe 1 created: 6 data + 3 parity blocks of 4 KiB");

    // Algorithm 1: write block 2. The client reads the old chunk, writes
    // N_2, and sends each parity node only the delta α_{j,2}·(new − old).
    let new_block = vec![0xAB; 4096];
    let outcome = store
        .write(BlockAddr::new(1, 2), &new_block)
        .expect("write quorum available");
    println!(
        "write: block 2 -> version {} ({} nodes validated, {} rounds, {} messages)",
        outcome.version,
        outcome.validated.len(),
        outcome.report.network_rounds(),
        outcome.report.messages()
    );

    // Algorithm 2, Case 1: N_2 is up and current — direct read.
    let read = store.read(BlockAddr::new(1, 2)).expect("read quorum");
    assert_eq!(read.bytes, new_block);
    println!("read: version {} via {:?}", read.version, read.path);

    // Batched writes fuse every block's per-level fan-out into one
    // scatter per level: the round count stays flat as the batch grows.
    let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![0xC0 | i as u8; 4096]).collect();
    let items: Vec<BatchWrite> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| BatchWrite::new(BlockAddr::new(1, i), p))
        .collect();
    let batch = store.write_batch(&items);
    assert!(batch.all_ok());
    println!(
        "write_batch: 6 blocks in {} fused rounds ({} messages) — a loop would cost ~6x the rounds",
        batch.report.network_rounds(),
        batch.report.messages()
    );

    // Kill the data node. Algorithm 2, Case 2: the version check still
    // completes on the parity levels, and the block is decoded from any
    // k = 6 consistent stripe nodes.
    cluster.kill(2);
    println!("node N_2 killed (fail-stop)");
    let read = store.read(BlockAddr::new(1, 2)).expect("decode path");
    assert_eq!(read.bytes, payloads[2]);
    println!("read: version {} via {:?}", read.version, read.path);

    // Writes to block 2 keep working too: level 0 of its trapezoid holds
    // only N_2 (b = 1, w_0 = 1), so they now fail...
    let err = store
        .write(BlockAddr::new(1, 2), &vec![0xCD; 4096])
        .unwrap_err();
    println!("write to block 2 with N_2 down: {err}");
    // ...while other blocks are unaffected.
    store
        .write(BlockAddr::new(1, 0), &vec![0xEE; 4096])
        .expect("block 0's trapezoid is fully alive");
    println!("write to block 0 still succeeds — per-block fault isolation");

    let io = cluster.io_totals();
    println!(
        "cluster IO: {} reads, {} writes, {} parity delta folds, {} version queries",
        io.reads, io.writes, io.parity_adds, io.version_queries
    );
}
