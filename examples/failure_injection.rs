//! Scripted failure injection: watch Algorithms 1 and 2 succeed and fail
//! exactly where the quorum analysis says they must, through the unified
//! `QuorumStore` facade.
//!
//! Walks a (15, 8) stripe through a deterministic fault script and
//! narrates every protocol decision: which level blocks a write, when a
//! read needs the decode path, what a revived-but-stale node does to the
//! version matrix, how a failed write's residue can later surface, and
//! how a scrub restores full redundancy.
//!
//! ```text
//! cargo run --example failure_injection
//! ```

use trapezoid_quorum::cluster::fault::{FaultEvent, FaultSchedule};
use trapezoid_quorum::protocol::ReadPath;
use trapezoid_quorum::{BlockAddr, Cluster, LocalTransport, ProtocolError, QuorumStore, Store};

fn main() {
    // Block 0's trapezoid on this config: level 0 = {N0, N8, N9, N10}
    // (w0 = 3, r0 = 2), level 1 = {N11..N14} (w1 = 2, r1 = 3).
    let cluster = Cluster::new(15);
    let store = Store::trap_erc(15, 8)
        .shape(0, 4, 1)
        .uniform_w(2)
        .transport(LocalTransport::new(cluster.clone()))
        .build()
        .expect("valid parameters");
    let block0 = BlockAddr::new(1, 0);

    let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 256]).collect();
    store.create(1, blocks).expect("all nodes up");
    println!("stripe created; block 0's trapezoid: level 0 = {{0,8,9,10}}, level 1 = {{11..14}}\n");

    // Act 1 — lose one parity node per level: both quorums survive.
    println!("act 1: kill N9 (level 0) and N13 (level 1)");
    let mut script = FaultSchedule::new(vec![FaultEvent::Kill(9), FaultEvent::Kill(13)]);
    script.run_to_end(&cluster);
    let w = store
        .write(block0, &vec![0x11; 256])
        .expect("w0=3 of {0,8,10}; w1=2 of {11,12,14}");
    println!(
        "  write ok -> version {} validated by {:?}",
        w.version, w.validated
    );
    let r = store.read(block0).expect("version check at level 0");
    println!("  read ok -> version {} via {:?}", r.version, r.path);
    println!("  N9 and N13 are now STALE: their AddParity guards will reject future deltas\n");

    // Act 2 — revive and scrub (stale nodes cannot count towards write
    // quorums), then lose the data node: writes keep committing, reads
    // switch to the decode path.
    println!("act 2: revive N9/N13, scrub, then kill N0 (the data node)");
    FaultSchedule::new(vec![FaultEvent::Revive(9), FaultEvent::Revive(13)]).run_to_end(&cluster);
    let report = store.scrub(1).expect("all nodes up");
    println!(
        "  scrub refreshed {} node-states (N9/N13 current again)",
        report.refreshed.len()
    );
    cluster.kill(0);
    let w = store
        .write(block0, &vec![0x22; 256])
        .expect("level 0 majority {8,9,10} without N0");
    println!("  write ok without N0 -> version {}", w.version);
    let r = store.read(block0).expect("decode from k = 8 nodes");
    assert!(matches!(r.path, ReadPath::Decoded { .. }));
    assert_eq!(r.bytes, vec![0x22; 256]);
    println!("  read ok via {:?}\n", r.path);

    // Act 3 — drop level 1 below w1: the write must fail at level 1,
    // exactly as Algorithm 1 lines 35-37 dictate. Level 0 has already
    // been written — Algorithm 1 has no rollback.
    println!("act 3: kill N11, N12, N14 (level 1 keeps only N13)");
    FaultSchedule::new(vec![
        FaultEvent::Kill(11),
        FaultEvent::Kill(12),
        FaultEvent::Kill(14),
    ])
    .run_to_end(&cluster);
    match store.write(block0, &vec![0x33; 256]) {
        Err(ProtocolError::WriteQuorumNotMet {
            level,
            needed,
            achieved,
        }) => {
            println!("  write failed at level {level}: {achieved}/{needed} validated");
            println!("  but level 0 (and live N13) already took the v3 delta — residue!\n");
        }
        other => panic!("expected a level-1 quorum failure, got {other:?}"),
    }

    // Act 4 — revive everything and scrub. The scrub's quorum reads see
    // version 3 on a level-0 majority, so the *failed* write's residue is
    // promoted to the committed state — the classic quorum-protocol
    // anomaly (a failed write may still become visible). The paper
    // inherits this from the original trapezoid protocol.
    println!("act 4: revive all, scrub the stripe");
    for node in 0..15 {
        cluster.revive(node);
    }
    let report = store.scrub(1).expect("cluster fully up");
    println!("  scrub refreshed {} node-states", report.refreshed.len());
    let r = store.read(block0).expect("direct read after scrub");
    assert_eq!(r.path, ReadPath::Direct);
    assert_eq!(r.version, 3, "the failed write's residue was promoted");
    assert_eq!(r.bytes, vec![0x33; 256]);
    println!(
        "  read ok via {:?} at version {} — the v3 residue surfaced (failed ≠ rolled back)",
        r.path, r.version
    );
    let w = store.write(block0, &vec![0x44; 256]).expect("full quorums");
    assert_eq!(
        w.validated.len(),
        8,
        "all 8 trapezoid members validate again"
    );
    println!(
        "  write ok -> version {} validated by all {} members",
        w.version,
        w.validated.len()
    );

    println!("\nevery success and failure above is forced by the quorum arithmetic:");
    println!("  w0 = 3 of 4, w1 = 2 of 4, r0 = 2, r1 = 3, decode needs k = 8 of n = 15.");
}
