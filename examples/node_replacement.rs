//! Node replacement and rebuild over a live volume — the recovery
//! workflow §I of the paper worries about, measured.
//!
//! A byte-addressable volume serves IO while a node's disk is replaced;
//! the rebuild sources k blocks per stripe (the classical MDS repair cost
//! the paper cites) and the IO counters show exactly what that costs. The
//! volume is generic over `QuorumStore`; the rebuild entry point is the
//! TRAP-ERC-typed extension, so the store is built with
//! `build_trap_erc()`.
//!
//! ```text
//! cargo run --release --example node_replacement
//! ```

use trapezoid_quorum::protocol::Volume;
use trapezoid_quorum::{BlockAddr, Cluster, LocalTransport, QuorumStore, Store};

fn main() {
    let cluster = Cluster::new(15);
    let client = Store::trap_erc(15, 8)
        .shape(0, 4, 1)
        .uniform_w(2)
        .transport(LocalTransport::new(cluster.clone()))
        .build_trap_erc()
        .expect("valid parameters");
    let volume = Volume::create(client, 0, 2048, 64).expect("provisioning");
    println!(
        "volume: {} blocks x {} B = {} KiB over a (15, 8) stripe set",
        volume.logical_blocks(),
        volume.block_size(),
        volume.capacity() / 1024
    );

    // Fill the volume with recognisable content.
    for lba in 0..volume.logical_blocks() {
        volume
            .write_block(lba, &vec![(lba as u8).wrapping_mul(7); 2048])
            .expect("healthy cluster");
    }

    // Disk of node 5 (a data node) dies and is replaced with a blank one.
    let before = cluster.io_totals();
    cluster.replace(5);
    println!("\nnode N5 replaced with blank hardware");

    // The volume keeps serving every block — reads of N5's blocks decode.
    let mut decoded = 0;
    for lba in 0..volume.logical_blocks() {
        let bytes = volume.read_block(lba).expect("n-1 nodes live");
        assert_eq!(bytes, vec![(lba as u8).wrapping_mul(7); 2048]);
        if lba % 8 == 5 {
            decoded += 1;
        }
    }
    println!("service during repair: all 64 blocks readable ({decoded} via decode)");

    // Rebuild N5 across every stripe of the volume.
    let reports = volume.rebuild_node(5).expect("readable stripes");
    let sourced: usize = reports.iter().map(|r| r.sources.len()).sum();
    let written: usize = reports.iter().map(|r| r.bytes_written).sum();
    println!(
        "rebuild: {} stripes, {} source reads total (k = 8 per stripe), {} B written to N5",
        reports.len(),
        sourced,
        written
    );
    let io = cluster.io_totals().since(&before);
    println!(
        "measured IO since replacement: {} reads, {} writes, {} version queries",
        io.reads, io.writes, io.version_queries
    );

    // Direct service restored.
    let out = volume.store().read(BlockAddr::new(0, 5)).expect("healthy");
    assert!(!out.decoded(), "N5 serves its block directly again");
    println!("\nN5 serves direct reads again; writes validate on all 8 trapezoid members:");
    let w = volume
        .store()
        .write(BlockAddr::new(0, 5), &vec![0xEE; 2048])
        .expect("healthy");
    println!(
        "  write -> version {} validated by {:?}",
        w.version, w.validated
    );
}
